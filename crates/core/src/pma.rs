//! A reusable packed-memory-array skeleton.
//!
//! The classical PMA of Itai–Konheim–Rodeh and its adaptive and randomized
//! descendants share one skeleton: a slot array viewed through a calibrator
//! tree, where an out-of-threshold window is rebalanced to a target layout.
//! They differ only in *policy*: what the thresholds are (fixed,
//! interpolated, or randomized) and what the target layout is (even,
//! unevenly weighted toward predicted hotspots, or randomly jittered).
//!
//! [`PmaBase`] is the skeleton; [`RebalancePolicy`] is the policy. The
//! concrete crates in this workspace (`lll-classic`, `lll-adaptive`,
//! `lll-randomized`) are policies plugged into this type.
//!
//! The insertion flow (mirrors the classical algorithm):
//!
//! 1. locate the insertion point between the rank's predecessor and
//!    successor;
//! 2. if the containing leaf would exceed its upper threshold, walk up to
//!    the smallest ancestor window that (counting the new element) is within
//!    threshold, and rebalance it to the policy's target layout;
//! 3. place the element — directly into a free slot of the gap if one
//!    exists, otherwise shift the minimal run of elements aside.
//!
//! Deletions mirror this with lower thresholds. All motion goes through
//! [`SlotArray`], so every atomic move preserves sorted order and is
//! cost-logged.

use crate::density::{even_targets_into, SegTree, Thresholds};
use crate::ids::{ElemId, IdGen};
use crate::ops::Op;
use crate::report::{BulkReport, OpReport};
use crate::slot_array::{merge_sorted, spread_moves, SlotArray};
use crate::traits::{LabelingBuilder, ListLabeling};

/// A window rebalancing policy: thresholds plus target layouts.
pub trait RebalancePolicy {
    /// Upper density threshold for a window at `level` (0 = leaf) in a tree
    /// of the given `height`. `window` identifies the node (for stateful,
    /// e.g. randomized-per-node, policies).
    fn upper(&mut self, level: usize, height: usize, window: (usize, usize)) -> f64;

    /// Lower density threshold (deletion side).
    fn lower(&mut self, level: usize, height: usize, window: (usize, usize)) -> f64;

    /// Target positions for the `k` elements currently in `[a, b)`, in rank
    /// order, appended to `out` (which arrives empty — the PMA owns it as a
    /// reusable scratch buffer, so steady-state rebalances allocate nothing).
    /// Must append `k` strictly increasing positions within `[a, b)`.
    /// The default is the canonical even spread.
    fn targets_into(
        &mut self,
        tree: &SegTree,
        slots: &SlotArray,
        a: usize,
        b: usize,
        out: &mut Vec<usize>,
    ) {
        let k = slots.occupied_in(a, b);
        let _ = tree;
        even_targets_into(a, b, k, out);
    }

    /// Hook: an element was just placed at `pos` (adaptive policies learn
    /// insertion pressure from this).
    fn on_insert(&mut self, tree: &SegTree, pos: usize) {
        let _ = (tree, pos);
    }

    /// Hook: the window `[a, b)` at `level` was just rebalanced.
    fn on_rebalance(&mut self, level: usize, window: (usize, usize)) {
        let _ = (level, window);
    }

    /// Algorithm name for reports.
    fn name(&self) -> &'static str;
}

/// The PMA skeleton parameterized by a rebalance policy.
#[derive(Clone, Debug)]
pub struct PmaBase<P: RebalancePolicy> {
    slots: SlotArray,
    tree: SegTree,
    ids: IdGen,
    capacity: usize,
    policy: P,
    rebalances: u64,
    rebalance_moves: u64,
    /// Reusable `(from, to)` buffer for rebalance sweeps (no per-rebalance
    /// allocation).
    pairs_scratch: Vec<(usize, usize)>,
    /// Reusable buffer handed to [`RebalancePolicy::targets_into`] — the
    /// other half of the zero-alloc steady-state rebalance.
    targets_scratch: Vec<usize>,
}

impl<P: RebalancePolicy> PmaBase<P> {
    /// Build an empty PMA of `capacity` elements over `num_slots` slots.
    pub fn new(capacity: usize, num_slots: usize, policy: P) -> Self {
        assert!(capacity >= 1, "capacity must be positive");
        assert!(num_slots > capacity, "PMA needs slack: capacity={capacity} num_slots={num_slots}");
        Self {
            slots: SlotArray::new(num_slots),
            tree: SegTree::new(num_slots),
            ids: IdGen::new(),
            capacity,
            policy,
            rebalances: 0,
            rebalance_moves: 0,
            pairs_scratch: Vec::new(),
            targets_scratch: Vec::new(),
        }
    }

    /// The calibrator-tree geometry.
    pub fn tree(&self) -> &SegTree {
        &self.tree
    }

    /// Immutable access to the policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Mutable access to the policy (tests / instrumentation).
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// Number of window rebalances performed so far.
    pub fn rebalances(&self) -> u64 {
        self.rebalances
    }

    /// Total moves spent inside rebalances.
    pub fn rebalance_moves(&self) -> u64 {
        self.rebalance_moves
    }

    /// Density of `[a, b)` counting `extra` hypothetical elements.
    #[inline]
    fn density_with(&self, a: usize, b: usize, extra: usize) -> f64 {
        (self.slots.occupied_in(a, b) + extra) as f64 / (b - a) as f64
    }

    /// Rebalance the window `[a, b)` to the policy's target layout. The
    /// window's occupants are enumerated via
    /// [`iter_occupied_in`](SlotArray::iter_occupied_in) — O(window) work,
    /// never an O(m) full-array scan.
    fn rebalance(&mut self, level: usize, a: usize, b: usize) {
        let mut targets = std::mem::take(&mut self.targets_scratch);
        targets.clear();
        self.policy.targets_into(&self.tree, &self.slots, a, b, &mut targets);
        debug_assert!(targets.windows(2).all(|w| w[0] < w[1]), "targets not increasing");
        debug_assert!(targets.iter().all(|&t| a <= t && t < b), "target outside window");
        let mut pairs = std::mem::take(&mut self.pairs_scratch);
        pairs.clear();
        for (i, (pos, _)) in self.slots.iter_occupied_in(a, b).enumerate() {
            pairs.push((pos, targets[i]));
        }
        debug_assert_eq!(targets.len(), pairs.len(), "policy returned wrong target count");
        let before = self.slots.pending_log_len();
        spread_moves(&mut self.slots, &pairs);
        let moved = self.slots.pending_log_len() - before;
        self.pairs_scratch = pairs;
        self.targets_scratch = targets;
        self.rebalances += 1;
        self.rebalance_moves += moved as u64;
        self.slots.metrics().note_rebalance((b - a) as u64, moved as u64);
        self.policy.on_rebalance(level, (a, b));
    }

    /// Find the smallest window containing `pos` that can absorb `extra`
    /// more elements within its upper threshold; rebalance it if the leaf
    /// itself cannot. Returns true if a rebalance happened.
    fn ensure_room(&mut self, pos: usize, extra: usize) -> bool {
        let height = self.tree.height();
        let seg = self.tree.seg_of(pos);
        let (leaf_a, leaf_b) = self.tree.window(0, seg);
        // One occupancy count serves both the threshold check and the
        // physical-room check.
        let leaf_occ = self.slots.occupied_in(leaf_a, leaf_b);
        let leaf_cap = self.policy.upper(0, height, (leaf_a, leaf_b)) * (leaf_b - leaf_a) as f64;
        if (leaf_occ + extra) as f64 <= leaf_cap && leaf_occ < leaf_b - leaf_a {
            return false;
        }
        for level in 1..=height {
            let (a, b) = self.tree.window(level, seg);
            let cap = self.policy.upper(level, height, (a, b)) * (b - a) as f64;
            if (self.slots.occupied_in(a, b) + extra) as f64 <= cap {
                self.rebalance(level, a, b);
                return true;
            }
        }
        // The root always has room: capacity ≤ root_upper · m by contract.
        let (a, b) = self.tree.root_window();
        assert!(
            self.len() + extra <= b - a,
            "array physically full: len={} extra={extra} m={}",
            self.len(),
            b - a
        );
        self.rebalance(height, a, b);
        true
    }

    /// After a deletion at `pos`, merge/rebalance if the leaf fell below its
    /// lower threshold.
    fn rebalance_after_delete(&mut self, pos: usize) {
        if self.len() < 8 {
            return; // too small for thresholds to be meaningful
        }
        let height = self.tree.height();
        let seg = self.tree.seg_of(pos);
        let (leaf_a, leaf_b) = self.tree.window(0, seg);
        let lo = self.policy.lower(0, height, (leaf_a, leaf_b));
        if self.density_with(leaf_a, leaf_b, 0) >= lo {
            return;
        }
        for level in 1..=height {
            let (a, b) = self.tree.window(level, seg);
            let lo = self.policy.lower(level, height, (a, b));
            let hi = self.policy.upper(level, height, (a, b));
            let d = self.density_with(a, b, 0);
            if d >= lo && d <= hi {
                self.rebalance(level, a, b);
                return;
            }
        }
        let (a, b) = self.tree.root_window();
        self.rebalance(height, a, b);
    }

    /// The insertion point for `rank`: `(pred_pos, succ_pos)` with `None`
    /// at the boundaries.
    fn neighbors(&self, rank: usize) -> (Option<usize>, Option<usize>) {
        let len = self.len();
        let pred = if rank > 0 { Some(self.slots.select(rank - 1)) } else { None };
        let succ = if rank < len { Some(self.slots.select(rank)) } else { None };
        (pred, succ)
    }

    /// Place a new element for `rank`, shifting minimally if the gap is
    /// fully occupied. Returns the placement position.
    fn place_at_rank(&mut self, rank: usize) -> usize {
        let m = self.slots.num_slots();
        let (pred, succ) = self.neighbors(rank);
        let id_pos = match (pred, succ) {
            (None, None) => {
                let pos = m / 2;
                return self.do_place(pos);
            }
            (Some(p), None) => {
                // after the last element: any free slot right of p, else shift left
                if let Some(f) = self.slots.next_free(p + 1) {
                    return self.do_place(f);
                }
                // no free slot right of p: shift [f..p] left into the free slot
                let f = self.slots.prev_free(p).expect("no free slot anywhere");
                for q in f + 1..=p {
                    self.slots.move_elem(q, q - 1);
                }
                return self.do_place(p);
            }
            (None, Some(q)) => {
                // before the first element
                if q > 0 {
                    if let Some(f) = self.slots.prev_free(q - 1) {
                        return self.do_place(f);
                    }
                }
                // no free slot left of q: shift [q..f] right
                let f = self.slots.next_free(q).expect("no free slot anywhere");
                for t in (q..f).rev() {
                    self.slots.move_elem(t, t + 1);
                }
                return self.do_place(q);
            }
            (Some(p), Some(q)) => (p, q),
        };
        let (p, q) = id_pos;
        if q > p + 1 {
            // gap has at least one slot; find a free one (the gap may contain
            // nothing else, so every slot in (p, q) is free)
            let mid = p + (q - p) / 2;
            return self.do_place(mid);
        }
        // adjacent: shift toward the nearest free slot
        let left = self.slots.prev_free(p);
        let right = self.slots.next_free(q);
        match (left, right) {
            (Some(l), Some(r)) if p - l <= r - q => self.shift_left_and_place(l, p),
            (Some(_), Some(r)) => self.shift_right_and_place(q, r),
            (Some(l), None) => self.shift_left_and_place(l, p),
            (None, Some(r)) => self.shift_right_and_place(q, r),
            (None, None) => unreachable!("ensure_room guarantees a free slot"),
        }
    }

    /// Shift `[l+1 ..= p]` one slot left (into free slot `l`), then place at `p`.
    fn shift_left_and_place(&mut self, l: usize, p: usize) -> usize {
        for q in l + 1..=p {
            self.slots.move_elem(q, q - 1);
        }
        self.do_place(p)
    }

    /// Shift `[q .. r)` one slot right (into free slot `r`), then place at `q`.
    fn shift_right_and_place(&mut self, q: usize, r: usize) -> usize {
        for t in (q..r).rev() {
            self.slots.move_elem(t, t + 1);
        }
        self.do_place(q)
    }

    fn do_place(&mut self, pos: usize) -> usize {
        let id = self.ids.fresh();
        self.slots.place(pos, id);
        pos
    }
}

impl<P: RebalancePolicy> ListLabeling for PmaBase<P> {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn num_slots(&self) -> usize {
        self.slots.num_slots()
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn insert(&mut self, rank: usize) -> OpReport {
        let mut out = OpReport::default();
        self.insert_into(rank, &mut out);
        out
    }

    fn insert_into(&mut self, rank: usize, out: &mut OpReport) {
        out.clear();
        assert!(rank <= self.len(), "insert rank {rank} > len {}", self.len());
        assert!(self.len() < self.capacity, "structure at capacity {}", self.capacity);
        // Pre-placement threshold check at the would-be insertion point.
        if self.len() > 0 {
            let probe = match self.neighbors(rank) {
                (_, Some(q)) => q,
                (Some(p), None) => p,
                (None, None) => unreachable!(),
            };
            self.ensure_room(probe, 1);
        }
        let pos = self.place_at_rank(rank);
        self.policy.on_insert(&self.tree, pos);
        self.slots.drain_log_into(&mut out.moves);
        out.placed = self.slots.get(pos).map(|e| (e, pos as u32));
    }

    fn delete(&mut self, rank: usize) -> OpReport {
        let mut out = OpReport::default();
        self.delete_into(rank, &mut out);
        out
    }

    fn delete_into(&mut self, rank: usize, out: &mut OpReport) {
        out.clear();
        assert!(rank < self.len(), "delete rank {rank} >= len {}", self.len());
        let pos = self.slots.select(rank);
        let elem = self.slots.remove(pos);
        self.rebalance_after_delete(pos);
        self.slots.drain_log_into(&mut out.moves);
        out.removed = Some((elem, pos as u32));
    }

    /// Native bulk insert: interleave the run into the smallest calibrator
    /// window around the insertion gap that absorbs `count` extra elements
    /// within its upper threshold, as **one** evenly-spread sweep — at most
    /// one move per resident of the window plus one placement per new
    /// element, instead of `count` independent rebalance cascades.
    fn splice(&mut self, rank: usize, count: usize) -> BulkReport {
        assert!(rank <= self.len(), "splice rank {rank} > len {}", self.len());
        assert!(
            self.len() + count <= self.capacity,
            "splice of {count} overflows capacity {} (len {})",
            self.capacity,
            self.len()
        );
        if count == 0 {
            return BulkReport::default();
        }
        if count == 1 {
            // A run of one is an ordinary insertion — same cost either way.
            let mut bulk = BulkReport::default();
            bulk.absorb_op(self.insert(rank));
            return bulk;
        }
        let height = self.tree.height();
        let (level, a, b) = if self.is_empty() {
            let (a, b) = self.tree.root_window();
            (height, a, b)
        } else {
            // The gap sits just before the successor (or after the last
            // element for an append); walk up from its leaf.
            let probe = if rank < self.len() {
                self.slots.select(rank)
            } else {
                self.slots.select(self.len() - 1)
            };
            let seg = self.tree.seg_of(probe);
            let mut choice = None;
            for level in 0..=height {
                let (a, b) = self.tree.window(level, seg);
                let cap = self.policy.upper(level, height, (a, b)) * (b - a) as f64;
                let occ = self.slots.occupied_in(a, b);
                if (occ + count) as f64 <= cap && occ + count <= b - a {
                    choice = Some((level, a, b));
                    break;
                }
            }
            choice.unwrap_or_else(|| {
                // The root always fits physically: capacity < num_slots.
                let (a, b) = self.tree.root_window();
                (height, a, b)
            })
        };
        let at = rank - self.slots.rank_at(a);
        let ids: Vec<ElemId> = (0..count).map(|_| self.ids.fresh()).collect();
        let placed = merge_sorted(&mut self.slots, a, b, at, &ids);
        for &(_, pos) in &placed {
            self.policy.on_insert(&self.tree, pos as usize);
        }
        let moves = self.slots.drain_log();
        self.rebalances += 1;
        self.rebalance_moves += (moves.len() - placed.len()) as u64;
        self.slots.metrics().note_splice(count as u64);
        self.slots.metrics().note_rebalance((b - a) as u64, (moves.len() - placed.len()) as u64);
        self.policy.on_rebalance(level, (a, b));
        BulkReport { moves, placed: ids }
    }

    fn slots(&self) -> &SlotArray {
        &self.slots
    }

    fn set_metrics(&mut self, metrics: crate::metrics::MetricsHandle) {
        self.slots.set_metrics(metrics);
    }

    fn name(&self) -> &'static str {
        self.policy.name()
    }
}

/// The classical fixed-threshold, even-spread policy (Itai–Konheim–Rodeh).
/// Exposed here because other crates build on it (and `lll-classic` wraps
/// it as its public API).
#[derive(Clone, Copy, Debug)]
pub struct ClassicPolicy {
    /// The interpolated thresholds.
    pub thresholds: Thresholds,
}

impl ClassicPolicy {
    /// Policy sized for `capacity` elements over `num_slots` slots.
    pub fn for_capacity(capacity: usize, num_slots: usize) -> Self {
        Self { thresholds: Thresholds::for_capacity(capacity, num_slots) }
    }
}

impl RebalancePolicy for ClassicPolicy {
    fn upper(&mut self, level: usize, height: usize, _window: (usize, usize)) -> f64 {
        self.thresholds.upper(level, height)
    }

    fn lower(&mut self, level: usize, height: usize, _window: (usize, usize)) -> f64 {
        self.thresholds.lower(level, height)
    }

    fn name(&self) -> &'static str {
        "classic-pma"
    }
}

/// Builder for the classical PMA (used pervasively as a default substrate).
#[derive(Clone, Copy, Debug, Default)]
pub struct ClassicBuilder;

impl LabelingBuilder for ClassicBuilder {
    type Structure = PmaBase<ClassicPolicy>;

    fn build(&self, capacity: usize, num_slots: usize) -> Self::Structure {
        PmaBase::new(capacity, num_slots, ClassicPolicy::for_capacity(capacity, num_slots))
    }

    fn expected_cost_hint(&self, capacity: usize) -> f64 {
        let lg = crate::traits::log2f(capacity);
        lg * lg
    }
}

/// Run an operation sequence through any structure, returning total cost.
/// Convenience for tests and examples.
pub fn run_ops<L: ListLabeling>(l: &mut L, ops: &[Op]) -> u64 {
    ops.iter().map(|&op| l.apply(op).cost()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::Oracle;

    #[test]
    fn classic_pma_random_ops_match_oracle() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let n = 300;
        let mut pma = ClassicBuilder.build(n, (n as f64 * 1.3) as usize);
        let mut oracle = Oracle::new();
        for step in 0..2000 {
            let len = pma.len();
            let insert = len == 0 || (len < n && rng.gen_bool(0.7));
            if insert {
                let r = rng.gen_range(0..=len);
                let rep = pma.insert(r);
                oracle.insert(r, rep.placed.unwrap().0);
            } else {
                let r = rng.gen_range(0..len);
                let rep = pma.delete(r);
                oracle.delete(r, rep.removed.unwrap().0);
            }
            if step % 100 == 0 {
                oracle.check(&pma);
            }
        }
        oracle.check(&pma);
    }

    #[test]
    fn classic_pma_fills_to_capacity() {
        let n = 200;
        let mut pma = ClassicBuilder.build(n, 260);
        for i in 0..n {
            pma.insert(i);
        }
        assert_eq!(pma.len(), n);
    }

    #[test]
    fn classic_pma_sequential_head_inserts() {
        let n = 500;
        let mut pma = ClassicBuilder.build(n, 700);
        let mut total = 0;
        for _ in 0..n {
            total += pma.insert(0).cost();
        }
        assert_eq!(pma.len(), n);
        // amortized cost should be polylog, far below the O(n) of shifting
        let amortized = total as f64 / n as f64;
        assert!(amortized < 60.0, "amortized {amortized} too high");
    }

    #[test]
    fn classic_pma_delete_to_empty() {
        let n = 64;
        let mut pma = ClassicBuilder.build(n, 96);
        for i in 0..n {
            pma.insert(i);
        }
        for _ in 0..n {
            pma.delete(0);
        }
        assert!(pma.is_empty());
    }

    #[test]
    fn splice_matches_incremental_semantics() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let n = 400;
            let mut spliced = ClassicBuilder.build(n, 520);
            let mut stepped = ClassicBuilder.build(n, 520);
            // Same logical sequence: batches against singles.
            let mut len = 0usize;
            while len < n {
                let rank = rng.gen_range(0..=len);
                let count = rng.gen_range(1..=(n - len).min(17));
                let bulk = spliced.splice(rank, count);
                assert_eq!(bulk.placed.len(), count);
                for i in 0..count {
                    stepped.insert(rank + i);
                }
                len += count;
                assert_eq!(spliced.len(), stepped.len());
            }
            // Identical rank structure: labels strictly increase and both
            // hold the same population.
            let labels: Vec<usize> = (0..len).map(|r| spliced.label_of_rank(r)).collect();
            assert!(labels.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn splice_placed_ids_are_in_rank_order() {
        let mut pma = ClassicBuilder.build(100, 140);
        for i in 0..10 {
            pma.insert(i);
        }
        let bulk = pma.splice(4, 6);
        // The 6 newcomers occupy ranks 4..10 in batch order.
        for (i, &e) in bulk.placed.iter().enumerate() {
            assert_eq!(pma.elem_at_rank(4 + i), e);
        }
    }

    #[test]
    fn splice_is_cheaper_than_point_inserts() {
        let n = 2048;
        let mut bulk = ClassicBuilder.build(n, n + n / 4 + 2);
        let rep = bulk.splice(0, n);
        let bulk_cost = rep.cost();
        assert_eq!(bulk.len(), n);
        assert_eq!(bulk_cost, n as u64, "empty-array bulk load is exactly one placement each");
        let mut inc = ClassicBuilder.build(n, n + n / 4 + 2);
        let mut inc_cost = 0u64;
        for i in 0..n {
            inc_cost += inc.insert(i).cost();
        }
        assert!(bulk_cost < inc_cost, "bulk {bulk_cost} !< incremental {inc_cost}");
    }

    #[test]
    fn costs_derive_from_move_log() {
        let mut pma = ClassicBuilder.build(10, 16);
        let rep = pma.insert(0);
        assert_eq!(rep.cost(), rep.moves.len() as u64);
        assert_eq!(rep.cost(), 1); // empty array: a single placement
    }

    #[test]
    fn rebalance_work_is_window_bounded_not_linear() {
        // The counter pin that keeps the O(m)-scan-per-rebalance regression
        // buried: every window enumeration on the rebalance path goes
        // through the occupancy bitmap, and `SlotArray::scan_words` counts
        // the words those scans touch. On a ~2^20-slot array, a single
        // full-array enumeration costs ≥ m/64 ≈ 21k words; a leaf-level
        // operation must stay orders of magnitude below that.
        let n = 1 << 20;
        let m = n * 13 / 10;
        let full_scan_words = m / 64; // what one O(m) enumeration would cost
        let mut pma = ClassicBuilder.build(n, m);
        pma.splice(0, n / 2); // bulk prefill: one (big, legitimate) sweep
        let rebalances_before = pma.rebalances();

        // A small splice rebalances the smallest window that absorbs it —
        // low-level, a few hundred slots.
        let scan0 = pma.slots().scan_words();
        pma.splice(n / 4, 8);
        let splice_scan = pma.slots().scan_words() - scan0;
        assert!(pma.rebalances() > rebalances_before, "splice must count as a rebalance");
        assert!(
            (splice_scan as usize) < full_scan_words / 8,
            "small splice scanned {splice_scan} words (full-array scan ≈ {full_scan_words})"
        );

        // A point insert into the evenly-spread array: gap placement, no
        // rebalance, word-local occupancy questions only.
        let scan0 = pma.slots().scan_words();
        pma.insert(n / 4);
        let insert_scan = pma.slots().scan_words() - scan0;
        assert!(
            (insert_scan as usize) < full_scan_words / 16,
            "point insert scanned {insert_scan} words (full-array scan ≈ {full_scan_words})"
        );
    }

    #[test]
    fn steady_state_inserts_reuse_the_move_log_sink() {
        // The zero-allocation pin: once the shared report buffer has grown
        // to a workload's high-water mark, re-running the same workload
        // must reuse it on every single drain (no `Vec` handed out per op).
        let n = 2048;
        let run = |rep: &mut OpReport| {
            let mut pma = ClassicBuilder.build(n, n * 13 / 10);
            for i in 0..n {
                pma.insert_into(i / 2, rep);
            }
            (pma.slots().log_sink_drains(), pma.slots().log_sink_reuses())
        };
        let mut rep = OpReport::default();
        run(&mut rep); // grows `rep` to the workload's high-water mark
        let (drains, reuses) = run(&mut rep);
        assert_eq!(drains, n as u64, "one drain per insert");
        assert_eq!(reuses, drains, "steady state must reuse the sink buffer on every op");
    }

    #[test]
    fn rebalance_counters_advance() {
        let n = 256;
        let mut pma = ClassicBuilder.build(n, 320);
        for _ in 0..n {
            pma.insert(0);
        }
        assert!(pma.rebalances() > 0);
        assert!(pma.rebalance_moves() > 0);
    }
}
