//! Word-level occupancy bitmap: one bit per slot, 64 slots per `u64`.
//!
//! The physical ground truth of a [`SlotArray`](crate::slot_array::SlotArray):
//! window questions ("who occupies `[a, b)`?", "where is the next free
//! slot?") are answered by walking only the window's words with
//! `count_ones`/`trailing_zeros`, instead of O(log m) Fenwick walks or —
//! worse — O(m) scans of the whole contents array. The Fenwick tree stays
//! on top of this bitmap for *global* rank/select; everything word-local
//! lives here.

/// A fixed-length bitmap over slot positions.
#[derive(Clone, Debug)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

/// Outcome of a capped scan (see [`Bitmap::next_zero_capped`]): scans give
/// up after a bounded number of words so callers can fall back to an
/// O(log² m) index walk instead of degrading to O(m/64).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CappedScan {
    /// The wanted bit is at this position.
    Found(usize),
    /// No such bit exists in the scanned direction.
    Exhausted,
    /// The word budget ran out; resume (inclusive) from this position with
    /// a different strategy.
    GaveUp(usize),
}

impl Bitmap {
    /// An all-zero bitmap over `len` positions.
    pub fn new(len: usize) -> Self {
        Self { words: vec![0; len.div_ceil(64)], len }
    }

    /// Number of positions covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap covers zero positions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit at `pos`.
    #[inline]
    pub fn get(&self, pos: usize) -> bool {
        debug_assert!(pos < self.len);
        self.words[pos >> 6] >> (pos & 63) & 1 == 1
    }

    /// Set the bit at `pos`.
    #[inline]
    pub fn set(&mut self, pos: usize) {
        debug_assert!(pos < self.len);
        self.words[pos >> 6] |= 1 << (pos & 63);
    }

    /// Clear the bit at `pos`.
    #[inline]
    pub fn clear(&mut self, pos: usize) {
        debug_assert!(pos < self.len);
        self.words[pos >> 6] &= !(1 << (pos & 63));
    }

    /// The backing words (test/diagnostic introspection).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Heap bytes held by the backing words.
    pub fn memory_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }

    /// Number of words a scan of `[a, b)` touches.
    #[inline]
    pub fn words_spanned(a: usize, b: usize) -> usize {
        if a >= b {
            0
        } else {
            (b - 1) / 64 - a / 64 + 1
        }
    }

    /// The word holding positions `64w..64w+64`, masked to `[a, b)`.
    #[inline]
    fn masked_word(&self, w: usize, a: usize, b: usize) -> u64 {
        let mut word = self.words[w];
        let base = w << 6;
        if a > base {
            word &= !0 << (a - base);
        }
        if b < base + 64 {
            word &= (1u64 << (b - base)) - 1;
        }
        word
    }

    /// Count of set bits in `[a, b)` — popcount over the spanned words.
    pub fn count_in(&self, a: usize, b: usize) -> usize {
        let b = b.min(self.len);
        if a >= b {
            return 0;
        }
        (a / 64..=(b - 1) / 64).map(|w| self.masked_word(w, a, b).count_ones() as usize).sum()
    }

    /// Iterate set-bit positions in `[a, b)` in increasing order, walking
    /// one word at a time with `trailing_zeros`.
    pub fn ones_in(&self, a: usize, b: usize) -> OnesIn<'_> {
        let b = b.min(self.len);
        let a = a.min(b);
        OnesIn {
            bits: self,
            b,
            word: if a < b { self.masked_word(a / 64, a, b) } else { 0 },
            w: a / 64,
            words_scanned: if a < b { 1 } else { 0 },
        }
    }

    /// The first set bit at or after `pos`, if any. Unbounded word scan; use
    /// only where the caller knows the distance is short (or doesn't care).
    pub fn next_one(&self, pos: usize) -> Option<usize> {
        if pos >= self.len {
            return None;
        }
        let mut w = pos >> 6;
        let mut word = self.words[w] & (!0 << (pos & 63));
        loop {
            if word != 0 {
                let p = (w << 6) + word.trailing_zeros() as usize;
                return (p < self.len).then_some(p);
            }
            w += 1;
            if w >= self.words.len() {
                return None;
            }
            word = self.words[w];
        }
    }

    /// The last set bit at or before `pos`, if any.
    pub fn prev_one(&self, pos: usize) -> Option<usize> {
        let pos = pos.min(self.len.saturating_sub(1));
        if self.len == 0 {
            return None;
        }
        let mut w = pos >> 6;
        let mut word = self.words[w] & (!0 >> (63 - (pos & 63)));
        loop {
            if word != 0 {
                return Some((w << 6) + 63 - word.leading_zeros() as usize);
            }
            if w == 0 {
                return None;
            }
            w -= 1;
            word = self.words[w];
        }
    }

    /// The first **clear** bit at or after `pos`, giving up after
    /// `cap_words` words. Returns how many words were examined alongside
    /// the outcome.
    pub fn next_zero_capped(&self, pos: usize, cap_words: usize) -> (CappedScan, usize) {
        if pos >= self.len {
            return (CappedScan::Exhausted, 0);
        }
        let mut w = pos >> 6;
        let mut word = !self.words[w] & (!0 << (pos & 63));
        let mut scanned = 1usize;
        loop {
            if word != 0 {
                let p = (w << 6) + word.trailing_zeros() as usize;
                return if p < self.len {
                    (CappedScan::Found(p), scanned)
                } else {
                    (CappedScan::Exhausted, scanned)
                };
            }
            w += 1;
            if w >= self.words.len() {
                return (CappedScan::Exhausted, scanned);
            }
            if scanned >= cap_words {
                return (CappedScan::GaveUp(w << 6), scanned);
            }
            word = !self.words[w];
            scanned += 1;
        }
    }

    /// The last **clear** bit at or before `pos`, giving up after
    /// `cap_words` words. Returns how many words were examined alongside
    /// the outcome.
    pub fn prev_zero_capped(&self, pos: usize, cap_words: usize) -> (CappedScan, usize) {
        if self.len == 0 {
            return (CappedScan::Exhausted, 0);
        }
        let pos = pos.min(self.len - 1);
        let mut w = pos >> 6;
        let mut word = !self.words[w] & (!0 >> (63 - (pos & 63)));
        let mut scanned = 1usize;
        loop {
            if word != 0 {
                return (CappedScan::Found((w << 6) + 63 - word.leading_zeros() as usize), scanned);
            }
            if w == 0 {
                return (CappedScan::Exhausted, scanned);
            }
            if scanned >= cap_words {
                return (CappedScan::GaveUp((w << 6) - 1), scanned);
            }
            w -= 1;
            word = !self.words[w];
            scanned += 1;
        }
    }
}

/// Iterator over set-bit positions in a window (see [`Bitmap::ones_in`]).
pub struct OnesIn<'a> {
    bits: &'a Bitmap,
    b: usize,
    /// Remaining bits of the current word (already masked to the window).
    word: u64,
    /// Current word index.
    w: usize,
    /// Words examined so far (flushed into scan instrumentation by
    /// wrappers that care; see `SlotArray::iter_occupied_in`).
    words_scanned: usize,
}

impl OnesIn<'_> {
    /// Words examined so far.
    #[inline]
    pub fn words_scanned(&self) -> usize {
        self.words_scanned
    }
}

impl Iterator for OnesIn<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.word != 0 {
                let p = (self.w << 6) + self.word.trailing_zeros() as usize;
                self.word &= self.word - 1;
                return Some(p);
            }
            self.w += 1;
            if (self.w << 6) >= self.b {
                return None;
            }
            self.word = self.bits.masked_word(self.w, 0, self.b);
            self.words_scanned += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_positions(positions: &[usize], len: usize) -> Bitmap {
        let mut b = Bitmap::new(len);
        for &p in positions {
            b.set(p);
        }
        b
    }

    #[test]
    fn set_get_clear() {
        let mut b = Bitmap::new(130);
        assert!(!b.get(129));
        b.set(129);
        b.set(0);
        b.set(64);
        assert!(b.get(129) && b.get(0) && b.get(64));
        b.clear(64);
        assert!(!b.get(64));
    }

    #[test]
    fn count_in_matches_naive() {
        let pos = [0, 1, 63, 64, 65, 127, 128, 199];
        let b = from_positions(&pos, 200);
        for a in [0, 1, 63, 64, 100, 199, 200] {
            for e in [0, 1, 64, 65, 128, 200] {
                let naive = pos.iter().filter(|&&p| a <= p && p < e).count();
                assert_eq!(b.count_in(a, e), naive, "count_in({a}, {e})");
            }
        }
    }

    #[test]
    fn ones_in_matches_naive() {
        let pos = [3, 63, 64, 100, 191, 192];
        let b = from_positions(&pos, 193);
        for (a, e) in [(0, 193), (3, 64), (64, 65), (65, 191), (100, 193), (5, 5)] {
            let got: Vec<usize> = b.ones_in(a, e).collect();
            let want: Vec<usize> = pos.iter().copied().filter(|&p| a <= p && p < e).collect();
            assert_eq!(got, want, "ones_in({a}, {e})");
        }
    }

    #[test]
    fn neighbors() {
        let b = from_positions(&[2, 70, 140], 150);
        assert_eq!(b.next_one(0), Some(2));
        assert_eq!(b.next_one(3), Some(70));
        assert_eq!(b.next_one(141), None);
        assert_eq!(b.prev_one(149), Some(140));
        assert_eq!(b.prev_one(69), Some(2));
        assert_eq!(b.prev_one(1), None);
    }

    #[test]
    fn capped_zero_scans() {
        // 200 bits, all ones except 130 and 199.
        let mut b = Bitmap::new(200);
        for i in 0..200 {
            b.set(i);
        }
        b.clear(130);
        b.clear(199);
        assert_eq!(b.next_zero_capped(0, 64).0, CappedScan::Found(130));
        // Budget of one word from position 0: gives up at the next word.
        assert_eq!(b.next_zero_capped(0, 1).0, CappedScan::GaveUp(64));
        assert_eq!(b.next_zero_capped(131, 64).0, CappedScan::Found(199));
        assert_eq!(b.prev_zero_capped(199, 64).0, CappedScan::Found(199));
        assert_eq!(b.prev_zero_capped(198, 64).0, CappedScan::Found(130));
        assert_eq!(b.prev_zero_capped(129, 1).0, CappedScan::GaveUp(127));
        assert_eq!(b.prev_zero_capped(129, 64).0, CappedScan::Exhausted);
        let full = from_positions(&[0, 1, 2], 3);
        assert_eq!(full.next_zero_capped(0, 8).0, CappedScan::Exhausted);
        assert_eq!(full.prev_zero_capped(2, 8).0, CappedScan::Exhausted);
    }

    #[test]
    fn tail_bits_beyond_len_are_ignored() {
        // len 70: word 1 has only 6 valid bits; a zero "beyond" len must
        // never be reported.
        let mut b = Bitmap::new(70);
        for i in 0..70 {
            b.set(i);
        }
        assert_eq!(b.next_zero_capped(0, 8).0, CappedScan::Exhausted);
        assert_eq!(b.next_one(69), Some(69));
        assert_eq!(b.count_in(0, 70), 70);
    }

    #[test]
    fn words_spanned_counts() {
        assert_eq!(Bitmap::words_spanned(0, 0), 0);
        assert_eq!(Bitmap::words_spanned(0, 1), 1);
        assert_eq!(Bitmap::words_spanned(0, 64), 1);
        assert_eq!(Bitmap::words_spanned(0, 65), 2);
        assert_eq!(Bitmap::words_spanned(63, 65), 2);
        assert_eq!(Bitmap::words_spanned(64, 128), 1);
    }
}
