//! The list-labeling operation alphabet.
//!
//! Paper §2: operations are `x_t = (r, σ)` where `σ` is insert/delete and
//! `r` is the rank at which the operation occurs. We use 0-based ranks:
//!
//! * `Insert(r)` with `r ∈ 0..=len` — the new element becomes the element of
//!   rank `r` (inserting at rank 0 makes it the new smallest; the paper's
//!   1-based "rank 1" is our rank 0).
//! * `Delete(r)` with `r ∈ 0..len` — removes the element of rank `r`.

use std::fmt;

/// One list-labeling operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Insert a new element so that it has the given 0-based rank.
    Insert(usize),
    /// Delete the element with the given 0-based rank.
    Delete(usize),
}

impl Op {
    /// The rank the operation addresses.
    #[inline]
    pub fn rank(&self) -> usize {
        match *self {
            Op::Insert(r) | Op::Delete(r) => r,
        }
    }

    /// True if this is an insertion.
    #[inline]
    pub fn is_insert(&self) -> bool {
        matches!(self, Op::Insert(_))
    }

    /// The net change to the stored-set size (+1 / -1).
    #[inline]
    pub fn delta_len(&self) -> isize {
        match self {
            Op::Insert(_) => 1,
            Op::Delete(_) => -1,
        }
    }

    /// Validate against a current length; returns `false` if the rank is out
    /// of range for that length.
    pub fn valid_for_len(&self, len: usize) -> bool {
        match *self {
            Op::Insert(r) => r <= len,
            Op::Delete(r) => r < len,
        }
    }
}

impl fmt::Debug for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Insert(r) => write!(f, "ins@{r}"),
            Op::Delete(r) => write!(f, "del@{r}"),
        }
    }
}

/// Compute the length trajectory of an operation sequence starting from
/// `start_len`, returning `None` if any op is invalid at its point of use.
pub fn check_sequence(start_len: usize, ops: &[Op]) -> Option<usize> {
    let mut len = start_len;
    for op in ops {
        if !op.valid_for_len(len) {
            return None;
        }
        len = (len as isize + op.delta_len()) as usize;
    }
    Some(len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_basics() {
        assert!(Op::Insert(0).is_insert());
        assert!(!Op::Delete(0).is_insert());
        assert_eq!(Op::Insert(3).rank(), 3);
        assert_eq!(Op::Delete(3).rank(), 3);
        assert_eq!(Op::Insert(0).delta_len(), 1);
        assert_eq!(Op::Delete(0).delta_len(), -1);
    }

    #[test]
    fn validity_bounds() {
        assert!(Op::Insert(0).valid_for_len(0));
        assert!(!Op::Delete(0).valid_for_len(0));
        assert!(Op::Insert(5).valid_for_len(5));
        assert!(!Op::Insert(6).valid_for_len(5));
        assert!(Op::Delete(4).valid_for_len(5));
        assert!(!Op::Delete(5).valid_for_len(5));
    }

    #[test]
    fn sequence_checking() {
        let ops = [Op::Insert(0), Op::Insert(1), Op::Delete(0), Op::Insert(0)];
        assert_eq!(check_sequence(0, &ops), Some(2));
        let bad = [Op::Insert(0), Op::Delete(1)];
        assert_eq!(check_sequence(0, &bad), None);
    }
}
