//! Cost accounting in the paper's model (element moves per operation).
//!
//! [`CostStats`] aggregates per-operation costs: totals, amortized average,
//! worst single operation, and a log₂-bucketed histogram (the histogram is
//! how experiment E11 exhibits the heavy tail of randomized algorithms that
//! motivates the paper's composition).

/// Aggregate statistics over a sequence of operation costs.
#[derive(Clone, Debug, Default)]
pub struct CostStats {
    ops: u64,
    total: u64,
    max: u64,
    /// hist[b] (b ≥ 1) counts operations with cost in [2^(b-1), 2^b - 1];
    /// hist[0] counts zero-cost operations.
    hist: Vec<u64>,
}

impl CostStats {
    /// Empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one operation of the given cost.
    #[inline]
    pub fn record(&mut self, cost: u64) {
        self.ops += 1;
        self.total += cost;
        self.max = self.max.max(cost);
        let bucket = if cost == 0 { 0 } else { 64 - (cost.leading_zeros() as usize) };
        if self.hist.len() <= bucket {
            self.hist.resize(bucket + 1, 0);
        }
        self.hist[bucket] += 1;
    }

    /// Number of operations recorded.
    #[inline]
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Total cost.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest single-operation cost.
    #[inline]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Average (amortized) cost per operation.
    pub fn amortized(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.total as f64 / self.ops as f64
        }
    }

    /// The log₂-bucketed histogram as `(bucket_lower_bound, count)` pairs:
    /// bucket with lower bound `2^(b-1)` counts costs in `[2^(b-1), 2^b)`.
    pub fn histogram(&self) -> Vec<(u64, u64)> {
        self.hist
            .iter()
            .enumerate()
            .map(|(b, &c)| (if b == 0 { 0 } else { 1u64 << (b - 1) }, c))
            .collect()
    }

    /// Fraction of operations with cost strictly greater than `threshold`.
    pub fn tail_fraction(&self, threshold: u64) -> f64 {
        if self.ops == 0 {
            return 0.0;
        }
        // Histogram buckets are coarse; callers wanting exact tails should
        // keep their own series. We count buckets entirely above threshold.
        let mut above = 0u64;
        for (b, &c) in self.hist.iter().enumerate() {
            let lo = if b == 0 { 0 } else { 1u64 << (b - 1) };
            if lo > threshold {
                above += c;
            }
        }
        above as f64 / self.ops as f64
    }

    /// Merge another stats object into this one.
    pub fn merge(&mut self, other: &CostStats) {
        self.ops += other.ops;
        self.total += other.total;
        self.max = self.max.max(other.max);
        if self.hist.len() < other.hist.len() {
            self.hist.resize(other.hist.len(), 0);
        }
        for (b, &c) in other.hist.iter().enumerate() {
            self.hist[b] += c;
        }
    }
}

/// A recorded per-operation cost series, for offline analysis
/// (light-amortization window checks, tail plots, crossover detection).
#[derive(Clone, Debug, Default)]
pub struct CostSeries {
    costs: Vec<u32>,
}

impl CostSeries {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one cost (saturating at u32::MAX).
    #[inline]
    pub fn push(&mut self, cost: u64) {
        self.costs.push(cost.min(u32::MAX as u64) as u32);
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// True if nothing recorded.
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    /// Raw costs.
    pub fn costs(&self) -> &[u32] {
        &self.costs
    }

    /// Total cost over `[a, b)`.
    pub fn window_total(&self, a: usize, b: usize) -> u64 {
        self.costs[a..b].iter().map(|&c| c as u64).sum()
    }

    /// The maximum total cost over any window of length `w`, used to verify
    /// light amortization: a structure with lightly-amortized cost C must
    /// satisfy `max_window_total(w) = O(w·C + n)` for every w.
    pub fn max_window_total(&self, w: usize) -> u64 {
        if self.costs.is_empty() || w == 0 {
            return 0;
        }
        let w = w.min(self.costs.len());
        let mut sum: u64 = self.costs[..w].iter().map(|&c| c as u64).sum();
        let mut best = sum;
        for i in w..self.costs.len() {
            sum += self.costs[i] as u64;
            sum -= self.costs[i - w] as u64;
            best = best.max(sum);
        }
        best
    }

    /// Fraction of operations with cost > threshold (exact).
    pub fn tail_fraction(&self, threshold: u32) -> f64 {
        if self.costs.is_empty() {
            return 0.0;
        }
        let above = self.costs.iter().filter(|&&c| c > threshold).count();
        above as f64 / self.costs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_aggregate() {
        let mut s = CostStats::new();
        for c in [0, 1, 1, 4, 16] {
            s.record(c);
        }
        assert_eq!(s.ops(), 5);
        assert_eq!(s.total(), 22);
        assert_eq!(s.max(), 16);
        assert!((s.amortized() - 4.4).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets() {
        let mut s = CostStats::new();
        for c in [0, 1, 2, 3, 4, 8, 9] {
            s.record(c);
        }
        let h = s.histogram();
        // bucket 0: cost 0; lb=1: {1}; lb=2: {2,3}; lb=4: {4}; lb=8: {8,9}
        assert_eq!(h[0], (0, 1));
        assert_eq!(h[1], (1, 1));
        assert_eq!(h[2], (2, 2));
        assert_eq!(h[3], (4, 1));
        assert_eq!(h[4], (8, 2));
    }

    #[test]
    fn merge_combines() {
        let mut a = CostStats::new();
        a.record(2);
        let mut b = CostStats::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.ops(), 2);
        assert_eq!(a.max(), 100);
        assert_eq!(a.total(), 102);
    }

    #[test]
    fn series_windows() {
        let mut s = CostSeries::new();
        for c in [1u64, 10, 1, 1, 10, 1] {
            s.push(c);
        }
        assert_eq!(s.window_total(0, 3), 12);
        assert_eq!(s.max_window_total(2), 11);
        assert_eq!(s.max_window_total(100), 24);
        assert!((s.tail_fraction(5) - 2.0 / 6.0).abs() < 1e-9);
    }
}
