//! Per-instance structural metrics for list-labeling structures.
//!
//! [`ListMetrics`] unifies what used to be ad-hoc counters scattered across
//! `SlotArray` (`scan_words`, `log_sink_drains`) and `Growable`
//! (`rank_resolutions`) into one shared handle, and extends them with the
//! distributional views the paper's analysis is actually about: histograms
//! of rebalance window widths, moves per rebalance, and moves per
//! operation, plus a bounded [`TraceRing`] of recent structural events.
//!
//! A [`MetricsHandle`] (`Arc<ListMetrics>`) is installed into a structure
//! and all of its inner layers, so a `Growable` and the `SlotArray` inside
//! whichever PMA it currently wraps report into the same instance — and
//! the handle survives the capacity-doubling rebuilds that replace the
//! inner structure wholesale.
//!
//! Every recording path is an inlined early-return when the handle was
//! built disabled, and a few relaxed atomic RMWs when enabled — no locks,
//! no allocation. The workspace zero-alloc harness pins steady-state churn
//! at 0 allocations/round *with metrics enabled*.

use std::sync::Arc;

use lll_obs::{Counter, Histogram, TraceKind, TraceRing};

/// Shared reference to one structure's metrics. Cheap to clone; installed
/// into every layer of a composed structure via
/// [`ListLabeling::set_metrics`](crate::traits::ListLabeling::set_metrics).
pub type MetricsHandle = Arc<ListMetrics>;

/// How many recent structural events a [`ListMetrics`] trace ring retains.
const TRACE_CAPACITY: usize = 128;

/// Unified per-instance counters, histograms, and structural trace for one
/// list-labeling structure (see the [module docs](self)).
#[derive(Debug)]
pub struct ListMetrics {
    enabled: bool,
    /// Element moves (the paper's cost unit), as observed by the slot array.
    pub moves: Counter,
    /// Batch splice calls.
    pub splices: Counter,
    /// Elements placed by splice calls.
    pub spliced_elems: Counter,
    /// Window rebalances triggered.
    pub rebalances: Counter,
    /// Occupancy-bitmap words touched by window scans.
    pub scan_words: Counter,
    /// Label → rank resolutions served.
    pub rank_resolutions: Counter,
    /// Capacity-changing rebuilds (each invalidates outstanding labels).
    pub epoch_bumps: Counter,
    /// Move-log drains into a caller buffer.
    pub log_sink_drains: Counter,
    /// Drains that reused the caller buffer's capacity (no allocation).
    pub log_sink_reuses: Counter,
    /// Rebalance window widths, in slots.
    pub rebalance_window: Histogram,
    /// Element moves per rebalance.
    pub rebalance_moves: Histogram,
    /// Element moves per mutating operation (insert/delete/splice).
    pub moves_per_op: Histogram,
    /// Recent structural events (rebalances, grows/shrinks).
    pub trace: TraceRing,
}

impl ListMetrics {
    /// A fresh instance; `enabled = false` turns every recording method
    /// into an inlined early return.
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            moves: Counter::new(),
            splices: Counter::new(),
            spliced_elems: Counter::new(),
            rebalances: Counter::new(),
            scan_words: Counter::new(),
            rank_resolutions: Counter::new(),
            epoch_bumps: Counter::new(),
            log_sink_drains: Counter::new(),
            log_sink_reuses: Counter::new(),
            rebalance_window: Histogram::moves(),
            rebalance_moves: Histogram::moves(),
            moves_per_op: Histogram::moves(),
            trace: TraceRing::new(TRACE_CAPACITY),
        }
    }

    /// A shareable handle to a fresh instance.
    pub fn handle(enabled: bool) -> MetricsHandle {
        Arc::new(Self::new(enabled))
    }

    /// Whether recording is live (false = every `note_*` is a no-op).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// A detached copy of the current values (counts independently from
    /// here on; the trace starts empty).
    pub fn snapshot(&self) -> Self {
        Self {
            enabled: self.enabled,
            moves: self.moves.clone(),
            splices: self.splices.clone(),
            spliced_elems: self.spliced_elems.clone(),
            rebalances: self.rebalances.clone(),
            scan_words: self.scan_words.clone(),
            rank_resolutions: self.rank_resolutions.clone(),
            epoch_bumps: self.epoch_bumps.clone(),
            log_sink_drains: self.log_sink_drains.clone(),
            log_sink_reuses: self.log_sink_reuses.clone(),
            rebalance_window: self.rebalance_window.clone(),
            rebalance_moves: self.rebalance_moves.clone(),
            moves_per_op: self.moves_per_op.clone(),
            trace: TraceRing::new(TRACE_CAPACITY),
        }
    }

    /// One element move.
    // lll-check: no-alloc
    #[inline]
    pub fn note_move(&self) {
        if !self.enabled {
            return;
        }
        self.moves.inc();
    }

    /// `words` occupancy-bitmap words scanned.
    // lll-check: no-alloc
    #[inline]
    pub fn note_scan(&self, words: u64) {
        if !self.enabled {
            return;
        }
        self.scan_words.add(words);
    }

    /// A move-log drain; `reused` = the caller buffer had capacity.
    // lll-check: no-alloc
    #[inline]
    pub fn note_log_drain(&self, reused: bool) {
        if !self.enabled {
            return;
        }
        self.log_sink_drains.inc();
        if reused {
            self.log_sink_reuses.inc();
        }
    }

    /// One label → rank resolution.
    // lll-check: no-alloc
    #[inline]
    pub fn note_rank_resolution(&self) {
        if !self.enabled {
            return;
        }
        self.rank_resolutions.inc();
    }

    /// A mutating operation finished with `cost` element moves.
    // lll-check: no-alloc
    #[inline]
    pub fn note_op_moves(&self, cost: u64) {
        if !self.enabled {
            return;
        }
        self.moves_per_op.record(cost);
    }

    /// A splice placed `count` elements.
    // lll-check: no-alloc
    #[inline]
    pub fn note_splice(&self, count: u64) {
        if !self.enabled {
            return;
        }
        self.splices.inc();
        self.spliced_elems.add(count);
    }

    /// A window rebalance of `window` slots moved `moved` elements.
    // lll-check: no-alloc
    #[inline]
    pub fn note_rebalance(&self, window: u64, moved: u64) {
        if !self.enabled {
            return;
        }
        self.rebalances.inc();
        self.rebalance_window.record(window);
        self.rebalance_moves.record(moved);
        self.trace.record(TraceKind::Rebalance, window, moved, self.epoch_bumps.get());
    }

    /// A capacity-changing rebuild to `new_capacity` performed
    /// `rebuild_moves` moves; `grow` distinguishes doubling from halving.
    // lll-check: no-alloc
    #[inline]
    pub fn note_epoch_bump(&self, grow: bool, new_capacity: u64, rebuild_moves: u64) {
        if !self.enabled {
            return;
        }
        self.epoch_bumps.inc();
        let kind = if grow { TraceKind::Grow } else { TraceKind::Shrink };
        self.trace.record(kind, new_capacity, rebuild_moves, self.epoch_bumps.get());
    }
}

impl Default for ListMetrics {
    fn default() -> Self {
        Self::new(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let m = ListMetrics::new(false);
        m.note_move();
        m.note_scan(10);
        m.note_rebalance(64, 12);
        m.note_op_moves(3);
        m.note_epoch_bump(true, 128, 40);
        assert_eq!(m.moves.get(), 0);
        assert_eq!(m.scan_words.get(), 0);
        assert_eq!(m.rebalances.get(), 0);
        assert_eq!(m.moves_per_op.count(), 0);
        assert_eq!(m.trace.recorded(), 0);
        assert!(!m.enabled());
    }

    #[test]
    fn enabled_handle_records_counters_histograms_and_trace() {
        let m = ListMetrics::new(true);
        m.note_move();
        m.note_move();
        m.note_scan(7);
        m.note_log_drain(true);
        m.note_log_drain(false);
        m.note_rank_resolution();
        m.note_splice(100);
        m.note_op_moves(5);
        m.note_rebalance(64, 12);
        m.note_epoch_bump(true, 256, 90);
        assert_eq!(m.moves.get(), 2);
        assert_eq!(m.scan_words.get(), 7);
        assert_eq!((m.log_sink_drains.get(), m.log_sink_reuses.get()), (2, 1));
        assert_eq!(m.rank_resolutions.get(), 1);
        assert_eq!((m.splices.get(), m.spliced_elems.get()), (1, 100));
        assert_eq!(m.moves_per_op.count(), 1);
        assert_eq!(m.rebalances.get(), 1);
        assert_eq!(m.rebalance_window.max(), 64);
        assert_eq!(m.rebalance_moves.max(), 12);
        assert_eq!(m.epoch_bumps.get(), 1);
        let events = m.trace.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, TraceKind::Rebalance);
        assert_eq!((events[0].a, events[0].b), (64, 12));
        assert_eq!(events[1].kind, TraceKind::Grow);
        assert_eq!((events[1].a, events[1].b, events[1].c), (256, 90, 1));
    }

    #[test]
    fn snapshot_detaches() {
        let m = ListMetrics::new(true);
        m.note_move();
        let snap = m.snapshot();
        m.note_move();
        assert_eq!(snap.moves.get(), 1);
        assert_eq!(m.moves.get(), 2);
    }
}
