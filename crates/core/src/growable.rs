//! Dynamic capacity on top of fixed-capacity list labeling.
//!
//! Definition 1 of the paper fixes the capacity `n` in advance — the right
//! setting for the theory, but a library user wants a structure that grows.
//! [`Growable`] wraps any [`LabelingBuilder`] with the standard global
//! doubling/halving technique: when the inner structure fills, rebuild into
//! one of twice the capacity (and shrink at quarter load). Each element
//! keeps a **stable handle** across rebuilds, so applications can hold
//! references to elements without tracking migrations.
//!
//! Rebuild costs amortize: a rebuild of size `n` happens only after Ω(n)
//! operations, adding amortized O(polylog n) per operation on top of the
//! inner structure's own bound (the appends performed during the rebuild
//! are the inner structure's cheapest workload).

use crate::ids::{ElemId, IdGen};
use crate::metrics::{ListMetrics, MetricsHandle};
use crate::ops::Op;
use crate::report::{BulkReport, OpReport};
use crate::traits::{LabelingBuilder, ListLabeling};
use std::collections::HashMap;

/// A stable, rebuild-surviving element handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Handle(pub u64);

/// Statistics for the growth machinery.
#[derive(Clone, Copy, Debug, Default)]
pub struct GrowableStats {
    /// Rebuilds that grew the structure.
    pub grows: u64,
    /// Rebuilds that shrank the structure.
    pub shrinks: u64,
    /// Total element moves spent inside rebuilds.
    pub rebuild_moves: u64,
    /// The rebuild epoch at the time of the snapshot (see
    /// [`Growable::epoch`]): `grows + shrinks` counts rebuilds, the epoch
    /// stamps *which* rebuild generation the stats describe — the same
    /// stamp concurrency layers validate optimistic reads against.
    pub epoch: u64,
}

/// A dynamically sized sorted list over any list-labeling algorithm.
pub struct Growable<B: LabelingBuilder> {
    builder: B,
    inner: B::Structure,
    /// inner element id → stable handle.
    handle_of: HashMap<ElemId, Handle>,
    ids: IdGen,
    min_capacity: usize,
    stats: GrowableStats,
    /// Moves performed by ordinary operations (not rebuilds).
    op_moves: u64,
    /// Bumped on every rebuild. All labels (slot positions) are invalidated
    /// when this changes; see [`Growable::epoch`].
    epoch: u64,
    /// Reusable report buffer for report-free entry points
    /// ([`insert`](Self::insert)/[`delete`](Self::delete)): steady-state
    /// operations through them allocate nothing for move logging.
    scratch: OpReport,
    /// Shared observability sink: counters (including label→rank
    /// resolutions — instrumentation for callers that promise label-native
    /// navigation, the `lll-api` cursors, and want to prove they keep it),
    /// move/rebalance histograms, and the structural trace ring. Installed
    /// into the inner structure (and re-installed across rebuilds) so every
    /// layer reports into this one instance.
    metrics: MetricsHandle,
}

impl<B: LabelingBuilder> Growable<B> {
    /// New empty list with an initial capacity floor.
    pub fn new(builder: B, initial_capacity: usize) -> Self {
        Self::with_metrics(builder, initial_capacity, ListMetrics::handle(true))
    }

    /// [`new`](Self::new) with a caller-provided metrics handle — pass
    /// `ListMetrics::handle(false)` to make every recording path a no-op
    /// (overhead benchmarks pin the enabled/disabled gap via this knob).
    pub fn with_metrics(builder: B, initial_capacity: usize, metrics: MetricsHandle) -> Self {
        let cap = initial_capacity.max(16);
        let mut inner = builder.build_default(cap);
        inner.set_metrics(metrics.clone());
        Self {
            builder,
            inner,
            handle_of: HashMap::new(),
            ids: IdGen::new(),
            min_capacity: cap,
            stats: GrowableStats::default(),
            op_moves: 0,
            epoch: 0,
            scratch: OpReport::default(),
            metrics,
        }
    }

    /// The metrics handle this structure (and its inner layers) report
    /// into.
    #[inline]
    pub fn metrics(&self) -> &MetricsHandle {
        &self.metrics
    }

    /// Current element count.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Current capacity (changes across rebuilds).
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Growth statistics, stamped with the current rebuild epoch.
    pub fn stats(&self) -> GrowableStats {
        let mut stats = self.stats;
        stats.epoch = self.epoch;
        stats
    }

    /// The rebuild epoch. Labels returned before the epoch last changed are
    /// stale: a rebuild rewrites every slot position. Callers maintaining
    /// label tables from operation reports (see `lll-api`) compare epochs
    /// around each operation and resynchronize from
    /// [`labels_snapshot`](Self::labels_snapshot) after a rebuild.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The inner fixed-capacity structure of the current epoch (for
    /// introspection — diagnostics, views, slot-array access). It is
    /// replaced wholesale on every rebuild.
    pub fn inner(&self) -> &B::Structure {
        &self.inner
    }

    /// The stable handle of the element currently stored as `elem`, or
    /// `None` if `elem` is not a live identity of the current epoch.
    /// Translates [`MoveRec`](crate::report::MoveRec) entries into handles.
    pub fn handle_of_elem(&self, elem: ElemId) -> Option<Handle> {
        self.handle_of.get(&elem).copied()
    }

    /// The rank of the element whose label (slot position) is `label`.
    pub fn rank_at_label(&self, label: usize) -> usize {
        self.metrics.note_rank_resolution();
        self.inner.slots().rank_at(label)
    }

    /// How many label→rank resolutions ([`rank_at_label`]) this structure
    /// has served. Cursors navigate the occupancy structure label-to-label
    /// and perform none per step; tests pin that here.
    ///
    /// [`rank_at_label`]: Self::rank_at_label
    pub fn rank_resolutions(&self) -> u64 {
        self.metrics.rank_resolutions.get()
    }

    /// The label (slot position) of the first element, if any.
    pub fn first_label(&self) -> Option<usize> {
        self.inner.slots().next_occupied_at_or_after(0)
    }

    /// The label (slot position) of the last element, if any.
    pub fn last_label(&self) -> Option<usize> {
        let m = self.inner.slots().num_slots();
        if m == 0 {
            return None;
        }
        self.inner.slots().prev_occupied_at_or_before(m - 1)
    }

    /// The label of the next element after `label`, if any — one word-level
    /// occupancy-bitmap query, no rank arithmetic.
    pub fn next_label_after(&self, label: usize) -> Option<usize> {
        self.inner.slots().next_occupied_at_or_after(label + 1)
    }

    /// The label of the previous element before `label`, if any.
    pub fn prev_label_before(&self, label: usize) -> Option<usize> {
        if label == 0 {
            return None;
        }
        self.inner.slots().prev_occupied_at_or_before(label - 1)
    }

    /// The handle of the element stored at `label`, or `None` for a free
    /// slot.
    pub fn handle_at_label(&self, label: usize) -> Option<Handle> {
        if label >= self.inner.slots().num_slots() {
            return None;
        }
        self.inner.slots().get(label).and_then(|e| self.handle_of_elem(e))
    }

    /// `(handle, label)` for every element in rank order — a full
    /// left-to-right sweep of the slot array. This is the resynchronization
    /// path for label tables after a rebuild.
    pub fn labels_snapshot(&self) -> Vec<(Handle, usize)> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each_label(|h, pos| out.push((h, pos)));
        out
    }

    /// Visit `(handle, label)` for every element in rank order — the
    /// zero-copy form of [`labels_snapshot`](Self::labels_snapshot): one
    /// left-to-right occupancy sweep, no intermediate `Vec`. Label-table
    /// resyncs and snapshot writers stream through here.
    pub fn for_each_label(&self, mut f: impl FnMut(Handle, usize)) {
        for (pos, e) in self.inner.slots().iter_occupied() {
            f(self.handle_of[&e], pos);
        }
    }

    /// The inner algorithm's name (stable across rebuilds).
    pub fn backend_name(&self) -> &'static str {
        self.inner.name()
    }

    /// Total element moves from ordinary operations (rebuild moves are
    /// tracked separately in [`GrowableStats`]).
    pub fn op_moves(&self) -> u64 {
        self.op_moves
    }

    /// The label (slot position) of the element of `rank`. Labels are only
    /// stable between operations, as in any list-labeling structure.
    pub fn label_of_rank(&self, rank: usize) -> usize {
        self.inner.label_of_rank(rank)
    }

    /// The handle of the element of `rank`.
    pub fn handle_at_rank(&self, rank: usize) -> Handle {
        self.handle_of[&self.inner.elem_at_rank(rank)]
    }

    /// Current rank of a handle, or `None` if it was deleted. O(len) scan;
    /// applications needing faster reverse lookups should maintain them
    /// from operation reports (see the `order_maintenance` example).
    pub fn rank_of(&self, h: Handle) -> Option<usize> {
        (0..self.len()).find(|&r| self.handle_at_rank(r) == h)
    }

    /// Rebuild into a structure of the given capacity, preserving order and
    /// handles.
    fn rebuild(&mut self, new_capacity: usize) {
        self.rebuild_merged(new_capacity, 0, 0);
    }

    /// Rebuild into a structure of `new_capacity`, splicing `count` brand
    /// new elements in at `rank` on the way through. The whole population —
    /// survivors and newcomers — lands via **one** bulk
    /// [`splice`](ListLabeling::splice) into the fresh structure (a single
    /// evenly-spread sweep on PMA-skeleton backends), and the epoch bumps
    /// exactly once. Returns the newcomers' handles in rank order.
    fn rebuild_merged(&mut self, new_capacity: usize, rank: usize, count: usize) -> Vec<Handle> {
        let mut order: Vec<Handle> =
            (0..self.len()).map(|r| self.handle_of[&self.inner.elem_at_rank(r)]).collect();
        let fresh_handles: Vec<Handle> = (0..count).map(|_| Handle(self.ids.fresh().0)).collect();
        order.splice(rank..rank, fresh_handles.iter().copied());
        self.rebuild_with_order(new_capacity, order);
        fresh_handles
    }

    /// The shared rebuild tail: land `order` (every element's handle, in
    /// final rank order) in a fresh structure of `new_capacity` via one
    /// bulk splice, remap identities, and bump the epoch exactly once.
    /// Both the growth/shrink rebuilds and the snapshot-restore path go
    /// through here, so their semantics cannot drift apart.
    fn rebuild_with_order(&mut self, new_capacity: usize, order: Vec<Handle>) {
        let grew = new_capacity > self.capacity();
        let mut fresh = self.builder.build_default(new_capacity);
        // Install the shared handle before the bulk splice so the rebuild's
        // own moves are observed too.
        fresh.set_metrics(self.metrics.clone());
        let bulk = fresh.splice(0, order.len());
        self.stats.rebuild_moves += bulk.cost();
        debug_assert_eq!(bulk.placed.len(), order.len(), "splice placed a wrong count");
        self.handle_of = bulk.placed.iter().copied().zip(order).collect();
        self.inner = fresh;
        self.epoch += 1;
        self.metrics.note_epoch_bump(grew, new_capacity as u64, bulk.cost());
    }

    /// Insert a new element at `rank`, growing if necessary. The move log
    /// drains through an internal reusable buffer: no per-op allocation.
    pub fn insert(&mut self, rank: usize) -> Handle {
        let mut rep = std::mem::take(&mut self.scratch);
        let h = self.insert_reported_into(rank, &mut rep);
        self.scratch = rep;
        h
    }

    /// [`insert`](Self::insert), also returning the operation's move log.
    ///
    /// Allocating convenience over
    /// [`insert_reported_into`](Self::insert_reported_into), which hot
    /// paths call with a reused buffer instead.
    pub fn insert_reported(&mut self, rank: usize) -> (Handle, OpReport) {
        let mut rep = OpReport::default();
        let h = self.insert_reported_into(rank, &mut rep);
        (h, rep)
    }

    /// Insert at `rank`, draining the operation's move log into `out`
    /// (cleared and refilled, keeping its allocation).
    ///
    /// The report covers the insertion itself, not any growth rebuild that
    /// preceded it: a rebuild rewrites *every* label, which the report
    /// format cannot express compactly. Callers detect rebuilds by
    /// comparing [`epoch`](Self::epoch) around the call and resynchronize
    /// from [`labels_snapshot`](Self::labels_snapshot).
    pub fn insert_reported_into(&mut self, rank: usize, out: &mut OpReport) -> Handle {
        assert!(rank <= self.len(), "insert rank {rank} > len {}", self.len());
        if self.len() == self.capacity() {
            self.stats.grows += 1;
            self.rebuild(self.capacity() * 2);
        }
        self.inner.insert_into(rank, out);
        self.op_moves += out.cost();
        self.metrics.note_op_moves(out.cost());
        let h = Handle(self.ids.fresh().0);
        self.handle_of.insert(out.placed.expect("insert places").0, h);
        h
    }

    /// Delete the element of `rank`, shrinking at quarter load. Move
    /// logging reuses the internal buffer (no per-op allocation).
    pub fn delete(&mut self, rank: usize) -> Handle {
        let mut rep = std::mem::take(&mut self.scratch);
        let h = self.delete_reported_into(rank, &mut rep);
        self.scratch = rep;
        h
    }

    /// [`delete`](Self::delete), also returning the operation's move log —
    /// the allocating convenience over
    /// [`delete_reported_into`](Self::delete_reported_into).
    pub fn delete_reported(&mut self, rank: usize) -> (Handle, OpReport) {
        let mut rep = OpReport::default();
        let h = self.delete_reported_into(rank, &mut rep);
        (h, rep)
    }

    /// Delete at `rank`, draining the move log into `out` (same rebuild
    /// caveat as [`insert_reported_into`](Self::insert_reported_into): a
    /// shrink that follows the deletion is signalled by the epoch, not by
    /// the report).
    pub fn delete_reported_into(&mut self, rank: usize, out: &mut OpReport) -> Handle {
        assert!(rank < self.len(), "delete rank {rank} >= len {}", self.len());
        self.inner.delete_into(rank, out);
        self.op_moves += out.cost();
        self.metrics.note_op_moves(out.cost());
        let (gone, _) = out.removed.expect("delete removes");
        let h = self.handle_of.remove(&gone).expect("unknown element");
        if self.capacity() > self.min_capacity && self.len() * 4 <= self.capacity() {
            self.stats.shrinks += 1;
            let target = (self.capacity() / 2).max(self.min_capacity);
            self.rebuild(target);
        }
        h
    }

    /// Batch-insert `count` new elements at consecutive final ranks
    /// `rank .. rank + count`, growing at most once. Returns the new
    /// handles in rank order plus one [`BulkReport`] move log for the whole
    /// batch.
    ///
    /// Two regimes, both a single logical operation:
    ///
    /// * **Fits in place** — the inner structure's
    ///   [`splice`](ListLabeling::splice) interleaves the run in one
    ///   evenly-spread sweep (PMA-skeleton backends) or per-insert
    ///   (fallback); the report carries the move log, the epoch is
    ///   untouched.
    /// * **Needs growth** — the batch rides the rebuild: survivors and
    ///   newcomers land together in one sweep into a structure sized for
    ///   the combined population (capacity doubles until it fits, so a
    ///   bulk load never pays the incremental doubling cascade). The
    ///   report is empty and the **epoch bumps once**; label-table callers
    ///   resync from [`labels_snapshot`](Self::labels_snapshot) exactly as
    ///   for any rebuild.
    pub fn splice_at(&mut self, rank: usize, count: usize) -> (Vec<Handle>, BulkReport) {
        assert!(rank <= self.len(), "splice rank {rank} > len {}", self.len());
        if count == 0 {
            return (Vec::new(), BulkReport::default());
        }
        if self.len() + count > self.capacity() {
            let mut cap = self.capacity();
            while cap < self.len() + count {
                cap *= 2;
            }
            self.stats.grows += 1;
            let handles = self.rebuild_merged(cap, rank, count);
            return (handles, BulkReport::default());
        }
        let bulk = self.inner.splice(rank, count);
        self.op_moves += bulk.cost();
        self.metrics.note_op_moves(bulk.cost());
        let handles: Vec<Handle> = bulk
            .placed
            .iter()
            .map(|&e| {
                let h = Handle(self.ids.fresh().0);
                self.handle_of.insert(e, h);
                h
            })
            .collect();
        (handles, bulk)
    }

    /// Bulk-load `count` new elements at the tail (final ranks
    /// `len .. len + count`) — the sorted-ingest path: a caller holding a
    /// pre-sorted run appends it here in one sweep instead of `count`
    /// point insertions. Equivalent to `splice_at(len, count)`.
    pub fn bulk_load(&mut self, count: usize) -> (Vec<Handle>, BulkReport) {
        self.splice_at(self.len(), count)
    }

    /// Restore an **empty** structure to `handles.len()` elements in one
    /// O(n) bulk sweep, binding `handles[r]` to rank `r` — the
    /// snapshot-restore path: handles persisted before the snapshot stay
    /// valid in the restored structure, so no caller has to re-key. The
    /// whole population lands via a single [`splice`](ListLabeling::splice)
    /// into a structure sized for it (~1 move per element), the epoch bumps
    /// exactly once, and the id allocator advances past every restored
    /// handle so future insertions cannot collide.
    ///
    /// Panics if the structure is non-empty or if any handle is the
    /// reserved value `u64::MAX` (it would saturate the id allocator and
    /// break the no-collision guarantee). `handles` must also be distinct —
    /// decoders (see `lll-api`'s `persist` module) validate this before
    /// calling, so it is re-checked in debug builds only, keeping the
    /// restore hot path to a single pass.
    pub fn load_with_handles(&mut self, handles: &[Handle]) {
        // Validate before touching any state, so the panic paths leave the
        // structure exactly as it was.
        assert!(self.is_empty(), "load_with_handles requires an empty structure");
        assert!(
            !handles.contains(&Handle(u64::MAX)),
            "load_with_handles rejects the reserved handle u64::MAX"
        );
        #[cfg(debug_assertions)]
        {
            let distinct: std::collections::HashSet<Handle> = handles.iter().copied().collect();
            assert_eq!(
                distinct.len(),
                handles.len(),
                "load_with_handles requires distinct handles"
            );
        }
        if handles.is_empty() {
            return;
        }
        let mut cap = self.capacity();
        while cap < handles.len() {
            cap *= 2;
        }
        self.rebuild_with_order(cap, handles.to_vec());
        self.ids.bump_past(handles.iter().map(|h| h.0).max().expect("non-empty"));
    }

    /// Apply an [`Op`].
    pub fn apply(&mut self, op: Op) -> Handle {
        match op {
            Op::Insert(r) => self.insert(r),
            Op::Delete(r) => self.delete(r),
        }
    }

    /// Iterate handles in rank order.
    pub fn iter(&self) -> impl Iterator<Item = Handle> + '_ {
        self.inner.slots().iter_occupied().map(move |(_, e)| self.handle_of[&e])
    }

    /// The report-free cost model: ordinary moves + rebuild moves.
    pub fn total_moves(&self) -> u64 {
        self.op_moves + self.stats.rebuild_moves
    }
}

/// A convenience: run an op sequence through a growable list, verifying
/// handles stay consistent (used by tests).
pub fn check_growable<B: LabelingBuilder>(builder: B, ops: &[Op]) -> Growable<B> {
    let mut g = Growable::new(builder, 16);
    let mut reference: Vec<Handle> = Vec::new();
    for &op in ops {
        match op {
            Op::Insert(r) => {
                let h = g.insert(r);
                reference.insert(r, h);
            }
            Op::Delete(r) => {
                let h = g.delete(r);
                assert_eq!(reference.remove(r), h, "deleted wrong handle");
            }
        }
        assert_eq!(g.len(), reference.len());
    }
    let got: Vec<Handle> = g.iter().collect();
    assert_eq!(got, reference, "handle order diverged");
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pma::ClassicBuilder;
    use rand::{Rng, SeedableRng};

    #[test]
    fn grows_past_initial_capacity() {
        let mut g = Growable::new(ClassicBuilder, 16);
        for i in 0..1000 {
            g.insert(i / 2);
        }
        assert_eq!(g.len(), 1000);
        assert!(g.capacity() >= 1000);
        assert!(g.stats().grows >= 5, "expected several doublings");
    }

    #[test]
    fn shrinks_at_quarter_load() {
        let mut g = Growable::new(ClassicBuilder, 16);
        for i in 0..512 {
            g.insert(i);
        }
        let grown = g.capacity();
        for _ in 0..500 {
            g.delete(0);
        }
        assert!(g.capacity() < grown, "expected shrink");
        assert!(g.stats().shrinks >= 1);
        assert_eq!(g.len(), 12);
    }

    #[test]
    fn handles_survive_rebuilds() {
        let mut g = Growable::new(ClassicBuilder, 16);
        let mut handles = Vec::new();
        for i in 0..300 {
            handles.push(g.insert(i));
        }
        // several growths happened; order must match insertion order
        let got: Vec<Handle> = g.iter().collect();
        assert_eq!(got, handles);
        assert_eq!(g.handle_at_rank(137), handles[137]);
        assert_eq!(g.rank_of(handles[42]), Some(42));
    }

    #[test]
    fn random_churn_consistency() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut ops = Vec::new();
        let mut len = 0usize;
        for _ in 0..2000 {
            if len == 0 || rng.gen_bool(0.6) {
                ops.push(Op::Insert(rng.gen_range(0..=len)));
                len += 1;
            } else {
                ops.push(Op::Delete(rng.gen_range(0..len)));
                len -= 1;
            }
        }
        check_growable(ClassicBuilder, &ops);
    }

    #[test]
    fn reported_ops_epoch_and_snapshot() {
        let mut g = Growable::new(ClassicBuilder, 16);
        let e0 = g.epoch();
        let (h0, rep) = g.insert_reported(0);
        // The placement reaches the report and translates back to the handle.
        let placed = rep.placed.expect("insert places").0;
        assert_eq!(g.handle_of_elem(placed), Some(h0));
        assert_eq!(g.epoch(), e0, "no rebuild yet");
        // Fill past capacity: epoch must bump, snapshot must mirror order.
        let mut handles = vec![h0];
        for i in 1..40 {
            handles.push(g.insert(i));
        }
        assert!(g.epoch() > e0, "growth must bump the epoch");
        let snap = g.labels_snapshot();
        assert_eq!(snap.iter().map(|&(h, _)| h).collect::<Vec<_>>(), handles);
        assert!(snap.windows(2).all(|w| w[0].1 < w[1].1), "labels increase with rank");
        for (h, pos) in snap {
            assert_eq!(g.rank_at_label(pos), g.rank_of(h).unwrap());
        }
        // The inner structure is reachable for introspection.
        assert_eq!(g.inner().len(), g.len());
        assert_eq!(g.backend_name(), g.inner().name());
        // Deleting returns the handle and its report.
        let (gone, rep) = g.delete_reported(0);
        assert_eq!(gone, handles[0]);
        assert_eq!(rep.removed.map(|(e, _)| e), rep.removed_elem());
    }

    #[test]
    fn bulk_load_matches_incremental_with_fewer_moves() {
        let n = 4096;
        let mut bulk = Growable::new(ClassicBuilder, 16);
        let e0 = bulk.epoch();
        let (handles, _) = bulk.bulk_load(n);
        assert_eq!(bulk.len(), n);
        assert_eq!(handles.len(), n);
        assert_eq!(bulk.epoch(), e0 + 1, "one growth rebuild, one epoch bump");
        assert_eq!(bulk.iter().collect::<Vec<_>>(), handles, "rank order == load order");

        let mut inc = Growable::new(ClassicBuilder, 16);
        for i in 0..n {
            inc.insert(i);
        }
        assert!(
            bulk.total_moves() < inc.total_moves(),
            "bulk {} !< incremental {}",
            bulk.total_moves(),
            inc.total_moves()
        );
        // The bulk path is a true one-pass load: ~1 move per element.
        assert!(bulk.total_moves() <= 2 * n as u64, "bulk load not O(n): {}", bulk.total_moves());
    }

    #[test]
    fn splice_at_interleaves_and_reports() {
        let mut g = Growable::new(ClassicBuilder, 64);
        let mut reference: Vec<Handle> = Vec::new();
        for i in 0..20 {
            reference.push(g.insert(i));
        }
        // In-place splice (fits in capacity): report carries the batch.
        let e0 = g.epoch();
        let (mid, rep) = g.splice_at(10, 8);
        assert_eq!(g.epoch(), e0, "no growth, no epoch bump");
        assert_eq!(rep.placed.len(), 8);
        assert!(rep.cost() >= 8, "each newcomer costs at least its placement");
        for (i, h) in mid.iter().enumerate() {
            reference.insert(10 + i, *h);
        }
        assert_eq!(g.iter().collect::<Vec<_>>(), reference);
        // Growth splice: epoch bumps once, report is empty, order holds.
        let (tail, rep) = g.splice_at(5, 100);
        assert_eq!(g.epoch(), e0 + 1);
        assert_eq!(rep.cost(), 0, "growth splice reports via the epoch");
        for (i, h) in tail.iter().enumerate() {
            reference.insert(5 + i, *h);
        }
        assert_eq!(g.iter().collect::<Vec<_>>(), reference);
        assert_eq!(g.len(), 128);
    }

    #[test]
    fn empty_splice_is_free() {
        let mut g = Growable::new(ClassicBuilder, 16);
        let (handles, rep) = g.splice_at(0, 0);
        assert!(handles.is_empty());
        assert_eq!(rep.cost(), 0);
        assert_eq!(g.total_moves(), 0);
    }

    #[test]
    fn label_navigation_walks_without_rank_resolution() {
        let mut g = Growable::new(ClassicBuilder, 16);
        let handles: Vec<Handle> = (0..200).map(|i| g.insert(i)).collect();
        let before = g.rank_resolutions();
        let mut walked = Vec::with_capacity(200);
        let mut label = g.first_label();
        while let Some(l) = label {
            walked.push(g.handle_at_label(l).expect("occupied label"));
            label = g.next_label_after(l);
        }
        assert_eq!(walked, handles);
        assert_eq!(g.rank_resolutions(), before, "label walk must not resolve ranks");
        // And backwards.
        let mut rev = Vec::with_capacity(200);
        let mut label = g.last_label();
        while let Some(l) = label {
            rev.push(g.handle_at_label(l).expect("occupied label"));
            label = g.prev_label_before(l);
        }
        rev.reverse();
        assert_eq!(rev, walked);
        assert_eq!(g.prev_label_before(g.first_label().unwrap()), None);
        assert_eq!(g.next_label_after(g.last_label().unwrap()), None);
    }

    #[test]
    fn load_with_handles_restores_identities_in_one_sweep() {
        let n = 1000usize;
        // Persisted handles are arbitrary distinct u64s, not necessarily
        // contiguous — mimic a restored snapshot with gaps.
        let handles: Vec<Handle> = (0..n as u64).map(|i| Handle(i * 3 + 5)).collect();
        let mut g = Growable::new(ClassicBuilder, 16);
        let e0 = g.epoch();
        g.load_with_handles(&handles);
        assert_eq!(g.len(), n);
        assert_eq!(g.epoch(), e0 + 1, "exactly one epoch bump");
        assert_eq!(g.iter().collect::<Vec<_>>(), handles, "rank order == handle order");
        assert_eq!(g.handle_at_rank(700), handles[700]);
        // O(n) restore: exactly one move (placement) per element.
        assert_eq!(g.total_moves(), n as u64, "restore must be 1 move/element");
        // Fresh insertions never reuse a restored handle value.
        let fresh = g.insert(0);
        assert!(fresh.0 > handles.iter().map(|h| h.0).max().unwrap());
        // The zero-copy visitor streams the same pairs labels_snapshot collects.
        let mut visited = Vec::new();
        g.for_each_label(|h, pos| visited.push((h, pos)));
        assert_eq!(visited, g.labels_snapshot());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn load_with_handles_rejects_non_empty() {
        let mut g = Growable::new(ClassicBuilder, 16);
        g.insert(0);
        g.load_with_handles(&[Handle(9)]);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn load_with_handles_rejects_reserved_handle() {
        // Handle(u64::MAX) would saturate the id allocator: the next fresh
        // handle would collide (release) or overflow (debug).
        let mut g = Growable::new(ClassicBuilder, 16);
        g.load_with_handles(&[Handle(3), Handle(u64::MAX)]);
    }

    #[test]
    fn amortized_cost_stays_polylog_through_growth() {
        let n = 1 << 12;
        let mut g = Growable::new(ClassicBuilder, 16);
        for _ in 0..n {
            g.insert(0);
        }
        let per_op = g.total_moves() as f64 / n as f64;
        assert!(per_op < 150.0, "growth overhead too high: {per_op}");
    }
}
