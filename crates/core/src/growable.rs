//! Dynamic capacity on top of fixed-capacity list labeling.
//!
//! Definition 1 of the paper fixes the capacity `n` in advance — the right
//! setting for the theory, but a library user wants a structure that grows.
//! [`Growable`] wraps any [`LabelingBuilder`] with the standard global
//! doubling/halving technique: when the inner structure fills, rebuild into
//! one of twice the capacity (and shrink at quarter load). Each element
//! keeps a **stable handle** across rebuilds, so applications can hold
//! references to elements without tracking migrations.
//!
//! Rebuild costs amortize: a rebuild of size `n` happens only after Ω(n)
//! operations, adding amortized O(polylog n) per operation on top of the
//! inner structure's own bound (the appends performed during the rebuild
//! are the inner structure's cheapest workload).

use crate::ids::{ElemId, IdGen};
use crate::ops::Op;
use crate::report::OpReport;
use crate::traits::{LabelingBuilder, ListLabeling};
use std::collections::HashMap;

/// A stable, rebuild-surviving element handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Handle(pub u64);

/// Statistics for the growth machinery.
#[derive(Clone, Copy, Debug, Default)]
pub struct GrowableStats {
    /// Rebuilds that grew the structure.
    pub grows: u64,
    /// Rebuilds that shrank the structure.
    pub shrinks: u64,
    /// Total element moves spent inside rebuilds.
    pub rebuild_moves: u64,
}

/// A dynamically sized sorted list over any list-labeling algorithm.
pub struct Growable<B: LabelingBuilder> {
    builder: B,
    inner: B::Structure,
    /// inner element id → stable handle.
    handle_of: HashMap<ElemId, Handle>,
    ids: IdGen,
    min_capacity: usize,
    stats: GrowableStats,
    /// Moves performed by ordinary operations (not rebuilds).
    op_moves: u64,
    /// Bumped on every rebuild. All labels (slot positions) are invalidated
    /// when this changes; see [`Growable::epoch`].
    epoch: u64,
}

impl<B: LabelingBuilder> Growable<B> {
    /// New empty list with an initial capacity floor.
    pub fn new(builder: B, initial_capacity: usize) -> Self {
        let cap = initial_capacity.max(16);
        let inner = builder.build_default(cap);
        Self {
            builder,
            inner,
            handle_of: HashMap::new(),
            ids: IdGen::new(),
            min_capacity: cap,
            stats: GrowableStats::default(),
            op_moves: 0,
            epoch: 0,
        }
    }

    /// Current element count.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Current capacity (changes across rebuilds).
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Growth statistics.
    pub fn stats(&self) -> GrowableStats {
        self.stats
    }

    /// The rebuild epoch. Labels returned before the epoch last changed are
    /// stale: a rebuild rewrites every slot position. Callers maintaining
    /// label tables from operation reports (see `lll-api`) compare epochs
    /// around each operation and resynchronize from
    /// [`labels_snapshot`](Self::labels_snapshot) after a rebuild.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The inner fixed-capacity structure of the current epoch (for
    /// introspection — diagnostics, views, slot-array access). It is
    /// replaced wholesale on every rebuild.
    pub fn inner(&self) -> &B::Structure {
        &self.inner
    }

    /// The stable handle of the element currently stored as `elem`, or
    /// `None` if `elem` is not a live identity of the current epoch.
    /// Translates [`MoveRec`](crate::report::MoveRec) entries into handles.
    pub fn handle_of_elem(&self, elem: ElemId) -> Option<Handle> {
        self.handle_of.get(&elem).copied()
    }

    /// The rank of the element whose label (slot position) is `label`.
    pub fn rank_at_label(&self, label: usize) -> usize {
        self.inner.slots().rank_at(label)
    }

    /// `(handle, label)` for every element in rank order — a full
    /// left-to-right sweep of the slot array. This is the resynchronization
    /// path for label tables after a rebuild.
    pub fn labels_snapshot(&self) -> Vec<(Handle, usize)> {
        self.inner.slots().iter_occupied().map(|(pos, e)| (self.handle_of[&e], pos)).collect()
    }

    /// The inner algorithm's name (stable across rebuilds).
    pub fn backend_name(&self) -> &'static str {
        self.inner.name()
    }

    /// Total element moves from ordinary operations (rebuild moves are
    /// tracked separately in [`GrowableStats`]).
    pub fn op_moves(&self) -> u64 {
        self.op_moves
    }

    /// The label (slot position) of the element of `rank`. Labels are only
    /// stable between operations, as in any list-labeling structure.
    pub fn label_of_rank(&self, rank: usize) -> usize {
        self.inner.label_of_rank(rank)
    }

    /// The handle of the element of `rank`.
    pub fn handle_at_rank(&self, rank: usize) -> Handle {
        self.handle_of[&self.inner.elem_at_rank(rank)]
    }

    /// Current rank of a handle, or `None` if it was deleted. O(len) scan;
    /// applications needing faster reverse lookups should maintain them
    /// from operation reports (see the `order_maintenance` example).
    pub fn rank_of(&self, h: Handle) -> Option<usize> {
        (0..self.len()).find(|&r| self.handle_at_rank(r) == h)
    }

    /// Rebuild into a structure of the given capacity, preserving order and
    /// handles.
    fn rebuild(&mut self, new_capacity: usize) {
        let order: Vec<Handle> =
            (0..self.len()).map(|r| self.handle_of[&self.inner.elem_at_rank(r)]).collect();
        let mut fresh = self.builder.build_default(new_capacity);
        let mut handle_of = HashMap::with_capacity(order.len());
        for (r, &h) in order.iter().enumerate() {
            let rep = fresh.insert(r); // append: the cheapest insertion path
            self.stats.rebuild_moves += rep.cost();
            handle_of.insert(rep.placed.expect("insert places").0, h);
        }
        self.inner = fresh;
        self.handle_of = handle_of;
        self.epoch += 1;
    }

    /// Insert a new element at `rank`, growing if necessary.
    pub fn insert(&mut self, rank: usize) -> Handle {
        self.insert_reported(rank).0
    }

    /// [`insert`](Self::insert), also returning the operation's move log.
    ///
    /// The report covers the insertion itself, not any growth rebuild that
    /// preceded it: a rebuild rewrites *every* label, which the report
    /// format cannot express compactly. Callers detect rebuilds by
    /// comparing [`epoch`](Self::epoch) around the call and resynchronize
    /// from [`labels_snapshot`](Self::labels_snapshot).
    pub fn insert_reported(&mut self, rank: usize) -> (Handle, OpReport) {
        assert!(rank <= self.len(), "insert rank {rank} > len {}", self.len());
        if self.len() == self.capacity() {
            self.stats.grows += 1;
            self.rebuild(self.capacity() * 2);
        }
        let rep = self.inner.insert(rank);
        self.op_moves += rep.cost();
        let h = Handle(self.ids.fresh().0);
        self.handle_of.insert(rep.placed.expect("insert places").0, h);
        (h, rep)
    }

    /// Delete the element of `rank`, shrinking at quarter load.
    pub fn delete(&mut self, rank: usize) -> Handle {
        self.delete_reported(rank).0
    }

    /// [`delete`](Self::delete), also returning the operation's move log
    /// (same rebuild caveat as [`insert_reported`](Self::insert_reported):
    /// a shrink that follows the deletion is signalled by the epoch, not by
    /// the report).
    pub fn delete_reported(&mut self, rank: usize) -> (Handle, OpReport) {
        assert!(rank < self.len(), "delete rank {rank} >= len {}", self.len());
        let rep = self.inner.delete(rank);
        self.op_moves += rep.cost();
        let (gone, _) = rep.removed.expect("delete removes");
        let h = self.handle_of.remove(&gone).expect("unknown element");
        if self.capacity() > self.min_capacity && self.len() * 4 <= self.capacity() {
            self.stats.shrinks += 1;
            let target = (self.capacity() / 2).max(self.min_capacity);
            self.rebuild(target);
        }
        (h, rep)
    }

    /// Apply an [`Op`].
    pub fn apply(&mut self, op: Op) -> Handle {
        match op {
            Op::Insert(r) => self.insert(r),
            Op::Delete(r) => self.delete(r),
        }
    }

    /// Iterate handles in rank order.
    pub fn iter(&self) -> impl Iterator<Item = Handle> + '_ {
        self.inner.slots().iter_occupied().map(move |(_, e)| self.handle_of[&e])
    }

    /// The report-free cost model: ordinary moves + rebuild moves.
    pub fn total_moves(&self) -> u64 {
        self.op_moves + self.stats.rebuild_moves
    }
}

/// A convenience: run an op sequence through a growable list, verifying
/// handles stay consistent (used by tests).
pub fn check_growable<B: LabelingBuilder>(builder: B, ops: &[Op]) -> Growable<B> {
    let mut g = Growable::new(builder, 16);
    let mut reference: Vec<Handle> = Vec::new();
    for &op in ops {
        match op {
            Op::Insert(r) => {
                let h = g.insert(r);
                reference.insert(r, h);
            }
            Op::Delete(r) => {
                let h = g.delete(r);
                assert_eq!(reference.remove(r), h, "deleted wrong handle");
            }
        }
        assert_eq!(g.len(), reference.len());
    }
    let got: Vec<Handle> = g.iter().collect();
    assert_eq!(got, reference, "handle order diverged");
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pma::ClassicBuilder;
    use rand::{Rng, SeedableRng};

    #[test]
    fn grows_past_initial_capacity() {
        let mut g = Growable::new(ClassicBuilder, 16);
        for i in 0..1000 {
            g.insert(i / 2);
        }
        assert_eq!(g.len(), 1000);
        assert!(g.capacity() >= 1000);
        assert!(g.stats().grows >= 5, "expected several doublings");
    }

    #[test]
    fn shrinks_at_quarter_load() {
        let mut g = Growable::new(ClassicBuilder, 16);
        for i in 0..512 {
            g.insert(i);
        }
        let grown = g.capacity();
        for _ in 0..500 {
            g.delete(0);
        }
        assert!(g.capacity() < grown, "expected shrink");
        assert!(g.stats().shrinks >= 1);
        assert_eq!(g.len(), 12);
    }

    #[test]
    fn handles_survive_rebuilds() {
        let mut g = Growable::new(ClassicBuilder, 16);
        let mut handles = Vec::new();
        for i in 0..300 {
            handles.push(g.insert(i));
        }
        // several growths happened; order must match insertion order
        let got: Vec<Handle> = g.iter().collect();
        assert_eq!(got, handles);
        assert_eq!(g.handle_at_rank(137), handles[137]);
        assert_eq!(g.rank_of(handles[42]), Some(42));
    }

    #[test]
    fn random_churn_consistency() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut ops = Vec::new();
        let mut len = 0usize;
        for _ in 0..2000 {
            if len == 0 || rng.gen_bool(0.6) {
                ops.push(Op::Insert(rng.gen_range(0..=len)));
                len += 1;
            } else {
                ops.push(Op::Delete(rng.gen_range(0..len)));
                len -= 1;
            }
        }
        check_growable(ClassicBuilder, &ops);
    }

    #[test]
    fn reported_ops_epoch_and_snapshot() {
        let mut g = Growable::new(ClassicBuilder, 16);
        let e0 = g.epoch();
        let (h0, rep) = g.insert_reported(0);
        // The placement reaches the report and translates back to the handle.
        let placed = rep.placed.expect("insert places").0;
        assert_eq!(g.handle_of_elem(placed), Some(h0));
        assert_eq!(g.epoch(), e0, "no rebuild yet");
        // Fill past capacity: epoch must bump, snapshot must mirror order.
        let mut handles = vec![h0];
        for i in 1..40 {
            handles.push(g.insert(i));
        }
        assert!(g.epoch() > e0, "growth must bump the epoch");
        let snap = g.labels_snapshot();
        assert_eq!(snap.iter().map(|&(h, _)| h).collect::<Vec<_>>(), handles);
        assert!(snap.windows(2).all(|w| w[0].1 < w[1].1), "labels increase with rank");
        for (h, pos) in snap {
            assert_eq!(g.rank_at_label(pos), g.rank_of(h).unwrap());
        }
        // The inner structure is reachable for introspection.
        assert_eq!(g.inner().len(), g.len());
        assert_eq!(g.backend_name(), g.inner().name());
        // Deleting returns the handle and its report.
        let (gone, rep) = g.delete_reported(0);
        assert_eq!(gone, handles[0]);
        assert_eq!(rep.removed.map(|(e, _)| e), rep.removed_elem());
    }

    #[test]
    fn amortized_cost_stays_polylog_through_growth() {
        let n = 1 << 12;
        let mut g = Growable::new(ClassicBuilder, 16);
        for _ in 0..n {
            g.insert(0);
        }
        let per_op = g.total_moves() as f64 / n as f64;
        assert!(per_op < 150.0, "growth overhead too high: {per_op}");
    }
}
