//! Calibrator-tree geometry and density thresholds.
//!
//! Packed-memory arrays view the slot array as `S` contiguous **segments**
//! of ≈log₂ m slots each, organized into an implicit binary tree: a node at
//! level `ℓ` (0 = leaf) spans `2^ℓ` segments. Each level has density
//! thresholds; when an insertion pushes a leaf past its upper threshold,
//! the algorithm walks up to the smallest ancestor **window** whose density
//! is within threshold and rebalances that window (Itai–Konheim–Rodeh 1981,
//! and virtually all successors including the algorithms composed by the
//! layered-list-labeling paper).
//!
//! [`SegTree`] captures the geometry (segment boundaries, windows, walks);
//! [`Thresholds`] the classical interpolated thresholds. Variant algorithms
//! supply their own threshold policies on top of the same geometry.

/// Geometry of the implicit calibrator tree over an array of `m` slots.
#[derive(Clone, Debug)]
pub struct SegTree {
    m: usize,
    num_segs: usize,
    /// Number of levels above the leaves: windows exist for
    /// `level ∈ 0..=height`, where `level == height` is the whole array.
    height: usize,
}

impl SegTree {
    /// Build geometry for `m` slots, aiming for segments of
    /// ≈`log₂ m` slots. `num_segs` is a power of two so windows nest.
    pub fn new(m: usize) -> Self {
        assert!(m >= 2, "SegTree needs at least 2 slots");
        let target = (usize::BITS - (m - 1).leading_zeros()) as usize; // ceil(log2 m)
        let target = target.max(2);
        let mut num_segs = 1usize;
        while num_segs * 2 * target <= m {
            num_segs *= 2;
        }
        let height = num_segs.trailing_zeros() as usize;
        Self { m, num_segs, height }
    }

    /// Total slots.
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.m
    }

    /// Number of leaf segments (a power of two).
    #[inline]
    pub fn num_segs(&self) -> usize {
        self.num_segs
    }

    /// Levels above the leaves; the root window (whole array) is at
    /// `level == height()`.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// The segment index containing slot `pos`.
    ///
    /// Segment boundaries are `floor(i · m / S)`, so segment sizes differ by
    /// at most one slot and no padding is needed for arbitrary `m`.
    #[inline]
    pub fn seg_of(&self, pos: usize) -> usize {
        debug_assert!(pos < self.m);
        // Invert floor(i*m/S) ≤ pos: i = floor((pos*S + S - 1 ... ) — do it
        // arithmetically then fix up boundary effects.
        let mut i = (pos * self.num_segs) / self.m;
        while self.seg_start(i + 1) <= pos {
            i += 1;
        }
        while self.seg_start(i) > pos {
            i -= 1;
        }
        i
    }

    /// First slot of segment `i` (also valid for `i == num_segs`, giving `m`).
    #[inline]
    pub fn seg_start(&self, i: usize) -> usize {
        (i * self.m) / self.num_segs
    }

    /// Slot range `[start, end)` of the level-`ℓ` window containing segment
    /// `seg`.
    #[inline]
    pub fn window(&self, level: usize, seg: usize) -> (usize, usize) {
        debug_assert!(level <= self.height);
        let width = 1usize << level;
        let first_seg = seg & !(width - 1);
        (self.seg_start(first_seg), self.seg_start(first_seg + width))
    }

    /// Slot range of the whole array.
    #[inline]
    pub fn root_window(&self) -> (usize, usize) {
        (0, self.m)
    }

    /// Iterate `(level, window_start, window_end)` from the leaf containing
    /// `pos` up to the root.
    pub fn walk_up(&self, pos: usize) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let seg = self.seg_of(pos);
        (0..=self.height).map(move |level| {
            let (a, b) = self.window(level, seg);
            (level, a, b)
        })
    }
}

/// Classical interpolated density thresholds.
///
/// Level-`ℓ` (0 = leaf) windows must keep their density within
/// `[lower(ℓ), upper(ℓ)]` where the bounds interpolate linearly between the
/// leaf and root values. The gap between adjacent levels' thresholds is what
/// pays for rebalances in the classical O(log² n) analysis: a freshly
/// rebalanced window must absorb `Θ(gap · window)` inserts before it can
/// violate again.
#[derive(Clone, Copy, Debug)]
pub struct Thresholds {
    /// Max density of a leaf (usually 1.0).
    pub leaf_upper: f64,
    /// Max density of the root (must be ≥ n/m for capacity n on m slots).
    pub root_upper: f64,
    /// Min density of a leaf (small; deletions below it trigger merges).
    pub leaf_lower: f64,
    /// Min density of the root.
    pub root_lower: f64,
}

impl Thresholds {
    /// Thresholds sized so that a structure of capacity `n` on `m` slots can
    /// always accept its full capacity: `root_upper` is set just above
    /// `n/m` (clamped to ≤ 0.995) and the remaining headroom is spread
    /// across the levels.
    pub fn for_capacity(n: usize, m: usize) -> Self {
        assert!(n < m, "need slack: n={n} >= m={m}");
        let load = n as f64 / m as f64;
        let root_upper = (load * 1.005 + 0.005).clamp(0.5, 0.995);
        Self {
            leaf_upper: 1.0,
            root_upper,
            leaf_lower: 0.05,
            root_lower: (0.25 * root_upper).min(load * 0.5),
        }
    }

    /// Upper density threshold at `level` of a tree with `height` levels.
    #[inline]
    pub fn upper(&self, level: usize, height: usize) -> f64 {
        if height == 0 {
            return self.root_upper.max(self.leaf_upper.min(1.0));
        }
        let t = level as f64 / height as f64;
        self.leaf_upper + (self.root_upper - self.leaf_upper) * t
    }

    /// Lower density threshold at `level` of a tree with `height` levels.
    #[inline]
    pub fn lower(&self, level: usize, height: usize) -> f64 {
        if height == 0 {
            return self.root_lower;
        }
        let t = level as f64 / height as f64;
        self.leaf_lower + (self.root_lower - self.leaf_lower) * t
    }
}

/// Append evenly spread target positions for `k` elements in `[a, b)` to
/// `out` — the allocation-free form used on the steady-state rebalance
/// path, where callers hand in a reusable scratch buffer.
///
/// Targets are strictly increasing and the spacing of any two consecutive
/// targets differs by at most one slot — the canonical PMA layout.
pub fn even_targets_into(a: usize, b: usize, k: usize, out: &mut Vec<usize>) {
    let w = b - a;
    assert!(k <= w, "cannot place {k} elements in window of {w}");
    out.extend((0..k).map(|i| a + (i * w) / k.max(1)));
}

/// Compute evenly spread target positions for `k` elements in `[a, b)`.
/// Allocating convenience wrapper around [`even_targets_into`].
pub fn even_targets(a: usize, b: usize, k: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(k);
    even_targets_into(a, b, k, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segtree_covers_array() {
        for m in [16, 100, 1000, 4096, 10_000] {
            let t = SegTree::new(m);
            assert!(t.num_segs().is_power_of_two());
            assert_eq!(t.seg_start(0), 0);
            assert_eq!(t.seg_start(t.num_segs()), m);
            // every slot belongs to exactly the segment seg_of claims
            for pos in (0..m).step_by(7) {
                let s = t.seg_of(pos);
                assert!(t.seg_start(s) <= pos && pos < t.seg_start(s + 1));
            }
        }
    }

    #[test]
    fn windows_nest() {
        let t = SegTree::new(1024);
        let (a0, b0) = t.window(0, 5);
        let (a1, b1) = t.window(1, 5);
        let (ar, br) = t.window(t.height(), 5);
        assert!(a1 <= a0 && b0 <= b1);
        assert_eq!((ar, br), (0, 1024));
        assert!(b0 - a0 >= 2);
    }

    #[test]
    fn walk_up_reaches_root() {
        let t = SegTree::new(512);
        let walk: Vec<_> = t.walk_up(100).collect();
        assert_eq!(walk.len(), t.height() + 1);
        assert_eq!(walk.last().copied(), Some((t.height(), 0, 512)));
        // windows widen monotonically
        for w in walk.windows(2) {
            assert!(w[1].1 <= w[0].1 && w[0].2 <= w[1].2);
        }
    }

    #[test]
    fn thresholds_interpolate() {
        let th = Thresholds::for_capacity(800, 1000);
        let h = 8;
        assert!(th.upper(0, h) >= th.upper(h, h));
        assert!(th.upper(h, h) >= 0.8, "root upper must fit capacity");
        assert!(th.lower(0, h) <= th.lower(h, h));
        // monotone across levels
        for l in 0..h {
            assert!(th.upper(l, h) >= th.upper(l + 1, h));
            assert!(th.lower(l, h) <= th.lower(l + 1, h));
        }
    }

    #[test]
    fn even_targets_are_even() {
        let t = even_targets(10, 30, 5);
        assert_eq!(t.len(), 5);
        assert!(t.windows(2).all(|w| w[0] < w[1]));
        assert!(t.iter().all(|&p| (10..30).contains(&p)));
        // spacing differs by at most 1
        let gaps: Vec<usize> = t.windows(2).map(|w| w[1] - w[0]).collect();
        let (mn, mx) = (gaps.iter().min().unwrap(), gaps.iter().max().unwrap());
        assert!(mx - mn <= 1);
        // full window
        let t = even_targets(0, 4, 4);
        assert_eq!(t, vec![0, 1, 2, 3]);
        // empty
        assert!(even_targets(3, 9, 0).is_empty());
    }
}
