//! Opaque element identities.
//!
//! List-labeling algorithms treat stored elements as black boxes (paper §2:
//! "the only information that it knows about the elements is their relative
//! ranks"). An [`ElemId`] is that black box: a unique, copyable token. The
//! *user* of a structure maps ids to payloads externally (see the
//! `database_index` example in the workspace root).

use std::fmt;

/// A unique identity for one stored element.
///
/// Ids are allocated by an [`IdGen`] owned by each structure and are never
/// reused within one structure's lifetime. Equality/ordering on `ElemId` is
/// identity only — it says nothing about element rank.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ElemId(pub u64);

impl ElemId {
    /// Sentinel for "no element" in packed slot storage (the
    /// [`SlotArray`](crate::slot_array::SlotArray) contents array stores
    /// bare `ElemId`s at 8 bytes per slot instead of 16-byte
    /// `Option<ElemId>`s). Never produced by an [`IdGen`].
    pub const NONE: ElemId = ElemId(u64::MAX);
}

impl fmt::Debug for ElemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for ElemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Monotone id allocator.
#[derive(Clone, Debug, Default)]
pub struct IdGen {
    next: u64,
}

impl IdGen {
    /// Create a generator starting at id 0.
    pub fn new() -> Self {
        Self { next: 0 }
    }

    /// Allocate the next fresh id.
    #[inline]
    pub fn fresh(&mut self) -> ElemId {
        let id = ElemId(self.next);
        self.next += 1;
        id
    }

    /// Number of ids handed out so far.
    pub fn issued(&self) -> u64 {
        self.next
    }

    /// Advance the allocator so every id up to and including `id` counts
    /// as issued — the snapshot-restore path, where previously issued ids
    /// come back from disk and future [`fresh`](Self::fresh) calls must
    /// not collide with them. A no-op if `id` was already issued.
    pub fn bump_past(&mut self, id: u64) {
        self.next = self.next.max(id.saturating_add(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_fresh_and_monotone() {
        let mut g = IdGen::new();
        let a = g.fresh();
        let b = g.fresh();
        assert_ne!(a, b);
        assert!(a < b);
        assert_eq!(g.issued(), 2);
    }

    #[test]
    fn debug_format_is_compact() {
        assert_eq!(format!("{:?}", ElemId(7)), "e7");
        assert_eq!(format!("{}", ElemId(7)), "e7");
    }
}
