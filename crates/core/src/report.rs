//! Per-operation reports: the move log and derived cost.
//!
//! The paper's cost model (Definition 1): *"The cost of an algorithm is the
//! number of elements moved during the insertions/deletions."* Every
//! structure in this workspace returns an [`OpReport`] from each operation;
//! the report's `moves` are recorded by the [`SlotArray`](crate::slot_array)
//! itself, so the cost cannot be under-reported by an algorithm.
//!
//! Placing a newly inserted element into its slot counts as one move (the
//! element is moved into the array); removing an element counts as zero.

use crate::ids::ElemId;

/// One physical element move from slot `from` to slot `to`.
///
/// Positions are `u32` — arrays of more than 2³² slots are far beyond the
/// scales this library targets, and the smaller record keeps move logs cheap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MoveRec {
    /// The element that moved.
    pub elem: ElemId,
    /// Source slot position.
    pub from: u32,
    /// Destination slot position.
    pub to: u32,
}

/// The outcome of a single `insert`/`delete` on a [`ListLabeling`]
/// structure.
///
/// [`ListLabeling`]: crate::traits::ListLabeling
#[derive(Clone, Debug, Default)]
pub struct OpReport {
    /// Every physical element move performed by this operation, in order.
    /// The placement of a newly inserted element is included as a move with
    /// `from == to` (the element "moves into" the array).
    pub moves: Vec<MoveRec>,
    /// For insertions: the new element and the slot it was placed in.
    pub placed: Option<(ElemId, u32)>,
    /// For deletions: the removed element and the slot it was removed from.
    pub removed: Option<(ElemId, u32)>,
}

impl OpReport {
    /// Reset for reuse, keeping the move buffer's allocation — the
    /// receiving end of the zero-allocation reporting path
    /// ([`ListLabeling::insert_into`](crate::traits::ListLabeling::insert_into)).
    pub fn clear(&mut self) {
        self.moves.clear();
        self.placed = None;
        self.removed = None;
    }

    /// The operation's cost in the paper's model: number of element moves.
    #[inline]
    pub fn cost(&self) -> u64 {
        self.moves.len() as u64
    }

    /// For insertions: the identity of the newly placed element.
    #[inline]
    pub fn placed_elem(&self) -> Option<ElemId> {
        self.placed.map(|(e, _)| e)
    }

    /// For insertions: the label (slot position) the new element received.
    #[inline]
    pub fn placed_label(&self) -> Option<usize> {
        self.placed.map(|(_, p)| p as usize)
    }

    /// For deletions: the identity of the removed element.
    #[inline]
    pub fn removed_elem(&self) -> Option<ElemId> {
        self.removed.map(|(e, _)| e)
    }

    /// `(elem, new_label)` for every element whose label this operation
    /// changed, in move order — exactly the updates a label table keyed by
    /// element must apply (the placement of a new element is included).
    pub fn label_updates(&self) -> impl Iterator<Item = (ElemId, usize)> + '_ {
        self.moves
            .iter()
            .map(|mv| (mv.elem, mv.to as usize))
            .chain(self.placed.map(|(e, p)| (e, p as usize)))
    }

    /// Merge another report's moves into this one (used by composite
    /// structures such as the embedding, which perform moves through several
    /// sub-structures during one logical operation).
    pub fn absorb(&mut self, other: OpReport) {
        self.moves.extend(other.moves);
        if self.placed.is_none() {
            self.placed = other.placed;
        }
        if self.removed.is_none() {
            self.removed = other.removed;
        }
    }
}

/// The outcome of a batch insertion ([`ListLabeling::splice`]) — one move
/// log covering the whole sweep.
///
/// Unlike [`OpReport`], which separates the placement from the other moves,
/// a bulk operation's placements appear **only** in `moves` (a placement is
/// logged with `from == to`): a later move in the same batch may relocate a
/// just-placed element, so chronological order is the only safe order for
/// label-table maintenance.
///
/// [`ListLabeling::splice`]: crate::traits::ListLabeling::splice
#[derive(Clone, Debug, Default)]
pub struct BulkReport {
    /// Every physical element move performed by the batch, in chronological
    /// order (placements of the new elements included, `from == to`).
    pub moves: Vec<MoveRec>,
    /// The identities of the newly inserted elements, in rank order.
    pub placed: Vec<ElemId>,
}

impl BulkReport {
    /// Reset for reuse, keeping both buffers' allocations (see
    /// [`OpReport::clear`]).
    pub fn clear(&mut self) {
        self.moves.clear();
        self.placed.clear();
    }

    /// The batch's cost in the paper's model: number of element moves.
    #[inline]
    pub fn cost(&self) -> u64 {
        self.moves.len() as u64
    }

    /// `(elem, new_label)` in chronological order — apply every entry, in
    /// order, to bring a label table keyed by element up to date. An element
    /// moved several times appears several times; the last entry wins.
    pub fn label_updates(&self) -> impl Iterator<Item = (ElemId, usize)> + '_ {
        self.moves.iter().map(|mv| (mv.elem, mv.to as usize))
    }

    /// Fold one single-operation report into this batch (the per-insert
    /// fallback path of [`ListLabeling::splice`]).
    ///
    /// [`ListLabeling::splice`]: crate::traits::ListLabeling::splice
    pub fn absorb_op(&mut self, op: OpReport) {
        self.moves.extend(op.moves);
        if let Some((e, _)) = op.placed {
            self.placed.push(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_counts_moves() {
        let mut r = OpReport::default();
        assert_eq!(r.cost(), 0);
        r.moves.push(MoveRec { elem: ElemId(1), from: 0, to: 3 });
        r.moves.push(MoveRec { elem: ElemId(2), from: 3, to: 3 });
        assert_eq!(r.cost(), 2);
    }

    #[test]
    fn accessors_project_the_fields() {
        let mut r = OpReport::default();
        assert_eq!(r.placed_elem(), None);
        assert_eq!(r.removed_elem(), None);
        assert_eq!(r.label_updates().count(), 0);
        r.moves.push(MoveRec { elem: ElemId(1), from: 0, to: 3 });
        r.placed = Some((ElemId(2), 6));
        r.removed = Some((ElemId(3), 1));
        assert_eq!(r.placed_elem(), Some(ElemId(2)));
        assert_eq!(r.placed_label(), Some(6));
        assert_eq!(r.removed_elem(), Some(ElemId(3)));
        // label_updates: every move, then the placement, in order.
        let ups: Vec<(ElemId, usize)> = r.label_updates().collect();
        assert_eq!(ups, vec![(ElemId(1), 3), (ElemId(2), 6)]);
    }

    #[test]
    fn bulk_report_is_chronological() {
        let mut b = BulkReport::default();
        let mut op = OpReport::default();
        op.moves.push(MoveRec { elem: ElemId(1), from: 4, to: 4 });
        op.placed = Some((ElemId(1), 4));
        b.absorb_op(op);
        let mut op = OpReport::default();
        // The second insert relocates the first element: the later entry
        // must win in label_updates order.
        op.moves.push(MoveRec { elem: ElemId(1), from: 4, to: 5 });
        op.moves.push(MoveRec { elem: ElemId(2), from: 4, to: 4 });
        op.placed = Some((ElemId(2), 4));
        b.absorb_op(op);
        assert_eq!(b.cost(), 3);
        assert_eq!(b.placed, vec![ElemId(1), ElemId(2)]);
        let last: std::collections::HashMap<ElemId, usize> = b.label_updates().collect();
        assert_eq!(last[&ElemId(1)], 5);
        assert_eq!(last[&ElemId(2)], 4);
    }

    #[test]
    fn absorb_merges() {
        let mut a = OpReport::default();
        a.moves.push(MoveRec { elem: ElemId(1), from: 0, to: 1 });
        let mut b = OpReport::default();
        b.moves.push(MoveRec { elem: ElemId(2), from: 5, to: 6 });
        b.placed = Some((ElemId(2), 6));
        a.absorb(b);
        assert_eq!(a.cost(), 2);
        assert_eq!(a.placed, Some((ElemId(2), 6)));
    }
}
