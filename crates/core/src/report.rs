//! Per-operation reports: the move log and derived cost.
//!
//! The paper's cost model (Definition 1): *"The cost of an algorithm is the
//! number of elements moved during the insertions/deletions."* Every
//! structure in this workspace returns an [`OpReport`] from each operation;
//! the report's `moves` are recorded by the [`SlotArray`](crate::slot_array)
//! itself, so the cost cannot be under-reported by an algorithm.
//!
//! Placing a newly inserted element into its slot counts as one move (the
//! element is moved into the array); removing an element counts as zero.

use crate::ids::ElemId;

/// One physical element move from slot `from` to slot `to`.
///
/// Positions are `u32` — arrays of more than 2³² slots are far beyond the
/// scales this library targets, and the smaller record keeps move logs cheap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MoveRec {
    /// The element that moved.
    pub elem: ElemId,
    /// Source slot position.
    pub from: u32,
    /// Destination slot position.
    pub to: u32,
}

/// The outcome of a single `insert`/`delete` on a [`ListLabeling`]
/// structure.
///
/// [`ListLabeling`]: crate::traits::ListLabeling
#[derive(Clone, Debug, Default)]
pub struct OpReport {
    /// Every physical element move performed by this operation, in order.
    /// The placement of a newly inserted element is included as a move with
    /// `from == to` (the element "moves into" the array).
    pub moves: Vec<MoveRec>,
    /// For insertions: the new element and the slot it was placed in.
    pub placed: Option<(ElemId, u32)>,
    /// For deletions: the removed element and the slot it was removed from.
    pub removed: Option<(ElemId, u32)>,
}

impl OpReport {
    /// The operation's cost in the paper's model: number of element moves.
    #[inline]
    pub fn cost(&self) -> u64 {
        self.moves.len() as u64
    }

    /// For insertions: the identity of the newly placed element.
    #[inline]
    pub fn placed_elem(&self) -> Option<ElemId> {
        self.placed.map(|(e, _)| e)
    }

    /// For insertions: the label (slot position) the new element received.
    #[inline]
    pub fn placed_label(&self) -> Option<usize> {
        self.placed.map(|(_, p)| p as usize)
    }

    /// For deletions: the identity of the removed element.
    #[inline]
    pub fn removed_elem(&self) -> Option<ElemId> {
        self.removed.map(|(e, _)| e)
    }

    /// `(elem, new_label)` for every element whose label this operation
    /// changed, in move order — exactly the updates a label table keyed by
    /// element must apply (the placement of a new element is included).
    pub fn label_updates(&self) -> impl Iterator<Item = (ElemId, usize)> + '_ {
        self.moves
            .iter()
            .map(|mv| (mv.elem, mv.to as usize))
            .chain(self.placed.map(|(e, p)| (e, p as usize)))
    }

    /// Merge another report's moves into this one (used by composite
    /// structures such as the embedding, which perform moves through several
    /// sub-structures during one logical operation).
    pub fn absorb(&mut self, other: OpReport) {
        self.moves.extend(other.moves);
        if self.placed.is_none() {
            self.placed = other.placed;
        }
        if self.removed.is_none() {
            self.removed = other.removed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_counts_moves() {
        let mut r = OpReport::default();
        assert_eq!(r.cost(), 0);
        r.moves.push(MoveRec { elem: ElemId(1), from: 0, to: 3 });
        r.moves.push(MoveRec { elem: ElemId(2), from: 3, to: 3 });
        assert_eq!(r.cost(), 2);
    }

    #[test]
    fn accessors_project_the_fields() {
        let mut r = OpReport::default();
        assert_eq!(r.placed_elem(), None);
        assert_eq!(r.removed_elem(), None);
        assert_eq!(r.label_updates().count(), 0);
        r.moves.push(MoveRec { elem: ElemId(1), from: 0, to: 3 });
        r.placed = Some((ElemId(2), 6));
        r.removed = Some((ElemId(3), 1));
        assert_eq!(r.placed_elem(), Some(ElemId(2)));
        assert_eq!(r.placed_label(), Some(6));
        assert_eq!(r.removed_elem(), Some(ElemId(3)));
        // label_updates: every move, then the placement, in order.
        let ups: Vec<(ElemId, usize)> = r.label_updates().collect();
        assert_eq!(ups, vec![(ElemId(1), 3), (ElemId(2), 6)]);
    }

    #[test]
    fn absorb_merges() {
        let mut a = OpReport::default();
        a.moves.push(MoveRec { elem: ElemId(1), from: 0, to: 1 });
        let mut b = OpReport::default();
        b.moves.push(MoveRec { elem: ElemId(2), from: 5, to: 6 });
        b.placed = Some((ElemId(2), 6));
        a.absorb(b);
        assert_eq!(a.cost(), 2);
        assert_eq!(a.placed, Some((ElemId(2), 6)));
    }
}
