//! The physical slot array.
//!
//! A [`SlotArray`] is an array of `m` slots, each either free or holding one
//! [`ElemId`]. Every structure in this workspace performs **all** element
//! motion through this type, which gives three guarantees:
//!
//! 1. **Cost integrity** — each move/placement is appended to an internal
//!    move log; an operation's cost is the length of the log segment it
//!    produced, so algorithms cannot misreport their cost.
//! 2. **Safety discipline** — each move targets a free slot and (checked in
//!    debug builds) crosses no occupied slot, which is exactly the condition
//!    under which a single move preserves sorted order. Rebalances that obey
//!    the standard "rightmost-first when spreading right" discipline keep
//!    the array sorted after *every* atomic move — a property the paper's
//!    embedding relies on when it mirrors moves between layers.
//! 3. **Navigation** — a word-level occupancy [`Bitmap`] (the ground truth,
//!    one bit per slot) answers window-local questions in O(window/64)
//!    words, and an occupancy Fenwick tree layered on top answers *global*
//!    rank ↔ position queries in O(log m).
//!
//! The contents array is sentinel-packed (`ElemId::NONE` marks a free
//! slot): 8 bytes per slot plus one bitmap bit, where a `Vec<Option<ElemId>>`
//! would spend 16 — half the memory, double the cache density on the scans
//! that dominate rebalances.

use crate::bitmap::{Bitmap, CappedScan};
use crate::fenwick::Fenwick;
use crate::ids::ElemId;
use crate::metrics::{ListMetrics, MetricsHandle};
use crate::report::MoveRec;
use std::sync::Arc;

/// Windows at most this wide answer [`SlotArray::occupied_in`] by bitmap
/// popcount (≤ 32 words touched); wider windows use the Fenwick range,
/// whose O(log m) walk wins on large spans.
const POPCOUNT_WINDOW_MAX: usize = 2048;

/// Free-slot scans examine at most this many bitmap words before falling
/// back to the Fenwick complement search, bounding the worst case at
/// O(cap + log² m) while keeping the (overwhelmingly common) word-local
/// case at O(1).
const FREE_SCAN_CAP_WORDS: usize = 32;

/// An array of slots holding at most one element each, with an occupancy
/// index and an append-only move log.
#[derive(Debug)]
pub struct SlotArray {
    /// Sentinel-packed contents: `ElemId::NONE` marks a free slot.
    contents: Vec<ElemId>,
    /// Occupancy ground truth, one bit per slot.
    bits: Bitmap,
    /// Global rank/select index over the bitmap.
    occ: Fenwick,
    log: Vec<MoveRec>,
    /// Total moves ever logged (survives log draining). Kept plain (not
    /// behind the metrics handle) because it is the cost-model contract —
    /// it always counts, even with metrics disabled.
    lifetime_moves: u64,
    /// Shared observability sink: moves, scan words (the instrumentation
    /// that pins rebalance work to O(window), not O(m) — counters are
    /// atomic/relaxed only so `&self` iterators can record), and log-sink
    /// drain/reuse counts. Installed by the owning structure via
    /// [`set_metrics`](Self::set_metrics) so every layer of a composed
    /// structure reports into one instance.
    metrics: MetricsHandle,
}

impl Clone for SlotArray {
    fn clone(&self) -> Self {
        Self {
            contents: self.contents.clone(),
            bits: self.bits.clone(),
            occ: self.occ.clone(),
            log: self.log.clone(),
            lifetime_moves: self.lifetime_moves,
            // Detach: the clone keeps the current readings but records
            // independently from here on.
            metrics: Arc::new(self.metrics.snapshot()),
        }
    }
}

impl SlotArray {
    /// An empty array of `m` slots.
    pub fn new(m: usize) -> Self {
        Self {
            contents: vec![ElemId::NONE; m],
            bits: Bitmap::new(m),
            occ: Fenwick::new(m),
            log: Vec::new(),
            lifetime_moves: 0,
            metrics: ListMetrics::handle(true),
        }
    }

    /// Install a shared metrics handle (replacing the private default), so
    /// this array reports into the same instance as the structure wrapping
    /// it. Existing readings on the old handle are not carried over.
    pub fn set_metrics(&mut self, metrics: MetricsHandle) {
        self.metrics = metrics;
    }

    /// The metrics handle this array reports into.
    #[inline]
    pub fn metrics(&self) -> &MetricsHandle {
        &self.metrics
    }

    /// Number of slots.
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.contents.len()
    }

    /// Number of stored elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.occ.total() as usize
    }

    /// True if no elements are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The element at `pos`, if any.
    #[inline]
    pub fn get(&self, pos: usize) -> Option<ElemId> {
        let e = self.contents[pos];
        (e != ElemId::NONE).then_some(e)
    }

    /// True if `pos` holds an element.
    #[inline]
    pub fn is_occupied(&self, pos: usize) -> bool {
        self.contents[pos] != ElemId::NONE
    }

    /// Occupancy Fenwick tree (read-only): the global rank/select index.
    /// The word-level [`bitmap`](Self::bitmap) is the ground truth it
    /// mirrors.
    #[inline]
    pub fn occ(&self) -> &Fenwick {
        &self.occ
    }

    /// The word-level occupancy bitmap (read-only ground truth).
    #[inline]
    pub fn bitmap(&self) -> &Bitmap {
        &self.bits
    }

    #[inline]
    fn note_scan(&self, words: usize) {
        self.metrics.note_scan(words as u64);
    }

    /// Bitmap words examined by window scans so far — the counter that
    /// regression tests pin to prove rebalance work is O(window).
    pub fn scan_words(&self) -> u64 {
        self.metrics.scan_words.get()
    }

    /// Number of occupied slots in `[a, b)`: bitmap popcount for word-local
    /// windows, Fenwick range for wide ones.
    #[inline]
    pub fn occupied_in(&self, a: usize, b: usize) -> usize {
        if b.saturating_sub(a) <= POPCOUNT_WINDOW_MAX {
            self.note_scan(Bitmap::words_spanned(a, b.min(self.num_slots())));
            self.bits.count_in(a, b)
        } else {
            self.occ.range(a, b) as usize
        }
    }

    /// Position of the element of 0-based `rank`.
    ///
    /// Panics if `rank >= len`.
    #[inline]
    pub fn select(&self, rank: usize) -> usize {
        self.occ.select(rank as u64).unwrap_or_else(|| {
            panic!(
                "select: rank {rank} out of range ({} occupied of {} slots)",
                self.len(),
                self.num_slots()
            )
        })
    }

    /// Rank of the element at `pos` (number of elements strictly before it).
    ///
    /// `pos` itself need not be occupied; this returns how many elements
    /// precede position `pos`.
    #[inline]
    pub fn rank_at(&self, pos: usize) -> usize {
        self.occ.prefix(pos) as usize
    }

    /// First free slot at or after `pos`: a word-level bitmap scan, falling
    /// back to the Fenwick complement search if no free slot appears within
    /// the scan cap.
    #[inline]
    pub fn next_free(&self, pos: usize) -> Option<usize> {
        let (scan, words) = self.bits.next_zero_capped(pos, FREE_SCAN_CAP_WORDS);
        self.note_scan(words);
        match scan {
            CappedScan::Found(p) => Some(p),
            CappedScan::Exhausted => None,
            CappedScan::GaveUp(resume) => self.occ.next_unmarked_at_or_after(resume),
        }
    }

    /// Last free slot at or before `pos` (same strategy as
    /// [`next_free`](Self::next_free)).
    #[inline]
    pub fn prev_free(&self, pos: usize) -> Option<usize> {
        let (scan, words) = self.bits.prev_zero_capped(pos, FREE_SCAN_CAP_WORDS);
        self.note_scan(words);
        match scan {
            CappedScan::Found(p) => Some(p),
            CappedScan::Exhausted => None,
            CappedScan::GaveUp(resume) => self.occ.prev_unmarked_at_or_before(resume),
        }
    }

    /// First occupied slot at or after `pos` — a word-level bitmap walk
    /// (O(distance/64)), the iteration primitive behind range scans and
    /// label-native cursors.
    #[inline]
    pub fn next_occupied_at_or_after(&self, pos: usize) -> Option<usize> {
        self.bits.next_one(pos)
    }

    /// Last occupied slot at or before `pos`.
    #[inline]
    pub fn prev_occupied_at_or_before(&self, pos: usize) -> Option<usize> {
        self.bits.prev_one(pos)
    }

    /// Place a brand-new element into a free slot. Logged as a move
    /// (`from == to`): the element is moved into the array, cost 1.
    pub fn place(&mut self, pos: usize, elem: ElemId) {
        debug_assert_ne!(elem, ElemId::NONE, "placing the sentinel");
        assert!(
            self.contents[pos] == ElemId::NONE,
            "place into occupied slot {pos} ({:?}; {} occupied of {} slots)",
            self.contents[pos],
            self.len(),
            self.num_slots()
        );
        self.contents[pos] = elem;
        self.bits.set(pos);
        self.occ.add(pos, 1);
        self.log.push(MoveRec { elem, from: pos as u32, to: pos as u32 });
        self.lifetime_moves += 1;
        self.metrics.note_move();
    }

    /// Remove and return the element at `pos`. Cost 0 (removal is not a
    /// move in the paper's cost model).
    pub fn remove(&mut self, pos: usize) -> ElemId {
        let elem = self.contents[pos];
        if elem == ElemId::NONE {
            panic!(
                "remove from empty slot {pos} ({} occupied of {} slots)",
                self.len(),
                self.num_slots()
            );
        }
        self.contents[pos] = ElemId::NONE;
        self.bits.clear(pos);
        self.occ.add(pos, -1);
        elem
    }

    /// Move the element at `from` into the free slot `to`. Cost 1.
    ///
    /// Debug builds verify the move crosses no occupied slot — the local
    /// condition that guarantees sorted order is preserved.
    pub fn move_elem(&mut self, from: usize, to: usize) -> ElemId {
        if from == to {
            let elem = self.contents[from];
            assert_ne!(elem, ElemId::NONE, "move from empty slot");
            return elem;
        }
        let elem = self.contents[from];
        if elem == ElemId::NONE {
            panic!(
                "move {from}->{to} from empty slot ({} occupied of {} slots)",
                self.len(),
                self.num_slots()
            );
        }
        assert!(
            self.contents[to] == ElemId::NONE,
            "move into occupied slot {to} ({:?}; {} occupied of {} slots)",
            self.contents[to],
            self.len(),
            self.num_slots()
        );
        debug_assert!(
            {
                let (a, b) = if from < to { (from + 1, to) } else { (to + 1, from) };
                self.bits.count_in(a, b) == 0
            },
            "move {from}->{to} crosses an occupied slot"
        );
        self.contents[from] = ElemId::NONE;
        self.contents[to] = elem;
        self.bits.clear(from);
        self.bits.set(to);
        self.occ.add(from, -1);
        self.occ.add(to, 1);
        self.log.push(MoveRec { elem, from: from as u32, to: to as u32 });
        self.lifetime_moves += 1;
        self.metrics.note_move();
        elem
    }

    /// Drain all moves logged since the last drain into `dst` (cleared
    /// first), keeping both the internal log's and `dst`'s allocations for
    /// reuse — the zero-allocation move-log sink. In steady state (once
    /// `dst` has grown to the workload's high-water mark) no heap traffic
    /// occurs; [`log_sink_reuses`](Self::log_sink_reuses) counts exactly
    /// those allocation-free drains.
    pub fn drain_log_into(&mut self, dst: &mut Vec<MoveRec>) {
        dst.clear();
        self.metrics.note_log_drain(dst.capacity() >= self.log.len());
        dst.extend_from_slice(&self.log);
        self.log.clear();
    }

    /// Drain all moves logged since the last drain into a fresh `Vec`.
    ///
    /// Allocating convenience over [`drain_log_into`](Self::drain_log_into);
    /// hot paths thread a reusable buffer instead.
    pub fn drain_log(&mut self) -> Vec<MoveRec> {
        let mut v = Vec::with_capacity(self.log.len());
        self.drain_log_into(&mut v);
        v
    }

    /// Drains served by the move-log sink so far.
    #[inline]
    pub fn log_sink_drains(&self) -> u64 {
        self.metrics.log_sink_drains.get()
    }

    /// Drains that reused the destination buffer without reallocating —
    /// equal to [`log_sink_drains`](Self::log_sink_drains) in steady state
    /// (the property the allocation-free tests pin).
    #[inline]
    pub fn log_sink_reuses(&self) -> u64 {
        self.metrics.log_sink_reuses.get()
    }

    /// Moves logged since the last drain, without draining.
    #[inline]
    pub fn pending_log_len(&self) -> usize {
        self.log.len()
    }

    /// Total moves ever performed.
    #[inline]
    pub fn lifetime_moves(&self) -> u64 {
        self.lifetime_moves
    }

    /// Iterate `(position, elem)` over occupied slots in position order —
    /// a word-level bitmap walk over the whole array.
    pub fn iter_occupied(&self) -> OccupiedIn<'_> {
        self.iter_occupied_in(0, self.num_slots())
    }

    /// Iterate `(position, elem)` over occupied slots of the window
    /// `[a, b)` in position order, touching **only** the window's bitmap
    /// words — the O(window) enumeration primitive every rebalance path
    /// uses (an O(m) full-array scan per rebalance is exactly the
    /// superlinear drag the paper's cost model excludes).
    pub fn iter_occupied_in(&self, a: usize, b: usize) -> OccupiedIn<'_> {
        OccupiedIn { slots: self, ones: self.bits.ones_in(a, b), flushed: 0 }
    }

    /// Snapshot of the full layout.
    pub fn layout(&self) -> Vec<Option<ElemId>> {
        self.contents.iter().map(|&e| (e != ElemId::NONE).then_some(e)).collect()
    }

    /// Heap bytes held by the physical representation (contents + bitmap +
    /// Fenwick), for memory accounting in benches.
    pub fn memory_bytes(&self) -> usize {
        self.contents.capacity() * std::mem::size_of::<ElemId>()
            + self.bits.memory_bytes()
            + self.occ.memory_bytes()
    }

    /// Verify internal consistency: contents, bitmap and Fenwick tree must
    /// agree at every position. One O(m) sweep (the Fenwick's point values
    /// are recovered in O(m) total); test/diagnostic use only.
    pub fn check_consistent(&self) {
        let vals = self.occ.point_values();
        let mut count = 0u64;
        for (i, &c) in self.contents.iter().enumerate() {
            let occupied = c != ElemId::NONE;
            assert_eq!(occupied, self.bits.get(i), "bitmap mismatch at {i}");
            assert_eq!(occupied as u32, vals[i], "fenwick mismatch at {i}");
            count += occupied as u64;
        }
        assert_eq!(count, self.occ.total(), "total mismatch");
    }
}

/// Iterator over occupied slots of a window (see
/// [`SlotArray::iter_occupied_in`]). Flushes the number of bitmap words it
/// examined into the array's scan instrumentation when dropped.
pub struct OccupiedIn<'a> {
    slots: &'a SlotArray,
    ones: crate::bitmap::OnesIn<'a>,
    flushed: usize,
}

impl Iterator for OccupiedIn<'_> {
    type Item = (usize, ElemId);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        let pos = self.ones.next()?;
        Some((pos, self.slots.contents[pos]))
    }
}

impl Drop for OccupiedIn<'_> {
    fn drop(&mut self) {
        let scanned = self.ones.words_scanned();
        self.slots.note_scan(scanned - self.flushed);
        self.flushed = scanned;
    }
}

/// Move a set of elements within a window to new target positions, in an
/// order that keeps the array sorted after every atomic move.
///
/// `pairs` is a slice of `(current_pos, target_pos)` sorted by
/// `current_pos`, encoding an order-preserving relocation (targets are
/// strictly increasing too). Left-movers are executed left-to-right first,
/// then right-movers right-to-left; this never moves an element across an
/// occupied slot (see module docs).
pub fn spread_moves(slots: &mut SlotArray, pairs: &[(usize, usize)]) {
    debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
    for &(from, to) in pairs.iter() {
        if to < from {
            slots.move_elem(from, to);
        }
    }
    for &(from, to) in pairs.iter().rev() {
        if to > from {
            slots.move_elem(from, to);
        }
    }
}

/// Interleave a sorted run of new elements into the window `[a, b)` in one
/// evenly-spread sweep.
///
/// The `new_ids.len()` new elements enter at local rank `at` (0-based among
/// the window's current occupants, so `at == 0` prepends and `at == k`
/// appends), all consecutive. The window's occupants and the new elements
/// are re-spread together to the canonical even layout, old elements first
/// via the [`spread_moves`] discipline (their targets are free or vacated,
/// never crossing an occupied slot) and new elements placed afterwards into
/// the reserved — by then free — gaps. One pass, at most one move per old
/// element plus one placement per new element.
///
/// Returns `(elem, position)` for each new element in rank order. Panics if
/// the combined population exceeds the window.
pub fn merge_sorted(
    slots: &mut SlotArray,
    a: usize,
    b: usize,
    at: usize,
    new_ids: &[ElemId],
) -> Vec<(ElemId, u32)> {
    let k = slots.occupied_in(a, b);
    let total = k + new_ids.len();
    assert!(total <= b - a, "merge_sorted: {total} elements into {} slots", b - a);
    assert!(at <= k, "merge_sorted: local rank {at} > window population {k}");
    let targets = crate::density::even_targets(a, b, total);
    // Old occupants keep their order; targets at `at..at + new` are reserved
    // for the incoming run.
    let mut pairs = Vec::with_capacity(k);
    for (i, (pos, _)) in slots.iter_occupied_in(a, b).enumerate() {
        let t = if i < at { targets[i] } else { targets[i + new_ids.len()] };
        pairs.push((pos, t));
    }
    spread_moves(slots, &pairs);
    new_ids
        .iter()
        .enumerate()
        .map(|(j, &id)| {
            let pos = targets[at + j];
            slots.place(pos, id);
            (id, pos as u32)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::IdGen;

    fn filled(positions: &[usize], m: usize) -> (SlotArray, Vec<ElemId>) {
        let mut s = SlotArray::new(m);
        let mut g = IdGen::new();
        let mut ids = Vec::new();
        for &p in positions {
            let id = g.fresh();
            s.place(p, id);
            ids.push(id);
        }
        (s, ids)
    }

    #[test]
    fn place_remove_move() {
        let (mut s, ids) = filled(&[2, 5], 8);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(2), Some(ids[0]));
        s.move_elem(5, 7);
        assert_eq!(s.get(5), None);
        assert_eq!(s.get(7), Some(ids[1]));
        let e = s.remove(2);
        assert_eq!(e, ids[0]);
        assert_eq!(s.len(), 1);
        s.check_consistent();
    }

    #[test]
    fn move_log_records_everything() {
        let (mut s, _) = filled(&[0], 4);
        s.move_elem(0, 2);
        let log = s.drain_log();
        assert_eq!(log.len(), 2); // place + move
        assert_eq!(log[1].from, 0);
        assert_eq!(log[1].to, 2);
        assert_eq!(s.drain_log().len(), 0);
        assert_eq!(s.lifetime_moves(), 2);
    }

    #[test]
    fn drain_log_into_reuses_the_buffer() {
        let (mut s, _) = filled(&[0], 64);
        let mut buf = Vec::new();
        s.drain_log_into(&mut buf);
        assert_eq!(buf.len(), 1);
        let cap = buf.capacity();
        let drains0 = s.log_sink_drains();
        let reuses0 = s.log_sink_reuses();
        // Steady state: every subsequent drain must reuse `buf` in place.
        for i in 0..100 {
            s.move_elem(i % 2, (i + 1) % 2);
            s.drain_log_into(&mut buf);
            assert_eq!(buf.len(), 1);
            assert_eq!(buf.capacity(), cap, "sink buffer reallocated");
        }
        assert_eq!(s.log_sink_drains() - drains0, 100);
        assert_eq!(s.log_sink_reuses() - reuses0, 100, "every drain must be allocation-free");
    }

    #[test]
    #[should_panic(expected = "occupied")]
    fn move_into_occupied_panics() {
        let (mut s, _) = filled(&[0, 1], 4);
        s.move_elem(0, 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "crosses")]
    fn crossing_move_panics_in_debug() {
        let (mut s, _) = filled(&[0, 1], 4);
        s.move_elem(0, 3); // crosses occupied slot 1
    }

    #[test]
    fn rank_navigation() {
        let (s, ids) = filled(&[1, 4, 6], 8);
        assert_eq!(s.select(0), 1);
        assert_eq!(s.select(2), 6);
        assert_eq!(s.rank_at(5), 2);
        assert_eq!(s.rank_at(0), 0);
        assert_eq!(s.next_free(1), Some(2));
        assert_eq!(s.prev_free(6), Some(5));
        assert_eq!(s.next_occupied_at_or_after(2), Some(4));
        assert_eq!(s.prev_occupied_at_or_before(5), Some(4));
        let got: Vec<ElemId> = s.iter_occupied().map(|(_, e)| e).collect();
        assert_eq!(got, ids);
    }

    #[test]
    fn windowed_iteration_matches_filtered_full_iteration() {
        let positions = [0, 3, 63, 64, 65, 127, 200, 255];
        let (s, _) = filled(&positions, 256);
        for (a, b) in [(0, 256), (1, 64), (63, 66), (64, 128), (100, 100), (128, 256), (250, 999)] {
            let got: Vec<(usize, ElemId)> = s.iter_occupied_in(a, b).collect();
            let want: Vec<(usize, ElemId)> =
                s.iter_occupied().filter(|&(p, _)| a <= p && p < b).collect();
            assert_eq!(got, want, "window [{a}, {b})");
            assert_eq!(s.occupied_in(a, b.min(256)), got.len());
        }
    }

    #[test]
    fn windowed_iteration_scans_only_the_window() {
        let m = 1 << 16; // 1024 words
        let positions: Vec<usize> = (0..m).step_by(7).collect();
        let (s, _) = filled(&positions, m);
        let before = s.scan_words();
        let count = s.iter_occupied_in(4096, 4096 + 128).count();
        let scanned = s.scan_words() - before;
        assert_eq!(count, 18);
        assert!(scanned <= 4, "128-slot window scanned {scanned} words");
    }

    #[test]
    fn free_scan_fallback_beyond_cap() {
        // One long fully-occupied run forces the Fenwick fallback.
        let m = FREE_SCAN_CAP_WORDS * 64 * 2;
        let mut s = SlotArray::new(m);
        let mut g = IdGen::new();
        let free = m - 3;
        for p in 0..m {
            if p != free {
                s.place(p, g.fresh());
            }
        }
        assert_eq!(s.next_free(0), Some(free));
        assert_eq!(s.prev_free(m - 1), Some(free));
        assert_eq!(s.next_free(free + 1), None);
        assert_eq!(s.prev_free(free - 1), None);
    }

    #[test]
    fn spread_moves_keeps_order() {
        // Elements at 3,4,5 spread out to 1,4,7: left-mover, stay, right-mover.
        let (mut s, ids) = filled(&[3, 4, 5], 9);
        spread_moves(&mut s, &[(3, 1), (4, 4), (5, 7)]);
        let got: Vec<(usize, ElemId)> = s.iter_occupied().collect();
        assert_eq!(got, vec![(1, ids[0]), (4, ids[1]), (7, ids[2])]);
    }

    #[test]
    fn spread_moves_compaction() {
        // Pack 0,3,6 -> 0,1,2 (all left-movers).
        let (mut s, ids) = filled(&[0, 3, 6], 8);
        spread_moves(&mut s, &[(0, 0), (3, 1), (6, 2)]);
        let got: Vec<(usize, ElemId)> = s.iter_occupied().collect();
        assert_eq!(got, vec![(0, ids[0]), (1, ids[1]), (2, ids[2])]);
    }

    #[test]
    fn merge_sorted_interleaves_a_run() {
        // Occupants at 1, 4, 9; merge three new elements at local rank 1:
        // final order must be old0, new0, new1, new2, old1, old2.
        let (mut s, old) = filled(&[1, 4, 9], 12);
        let fresh: Vec<ElemId> = (100..103).map(ElemId).collect();
        let placed = merge_sorted(&mut s, 0, 12, 1, &fresh);
        assert_eq!(placed.len(), 3);
        s.check_consistent();
        assert_eq!(s.len(), 6);
        let order: Vec<ElemId> = s.iter_occupied().map(|(_, e)| e).collect();
        assert_eq!(order[0], old[0]);
        assert_eq!(&order[1..4], &fresh[..]);
        assert_eq!(order[4], old[1]);
        assert_eq!(order[5], old[2]);
        // Even spread: positions are the canonical targets for 6-of-12.
        let pos: Vec<usize> = s.iter_occupied().map(|(p, _)| p).collect();
        assert_eq!(pos, vec![0, 2, 4, 6, 8, 10]);
    }

    #[test]
    fn merge_sorted_costs_one_sweep() {
        // 4 occupants, 4 new: at most 4 old moves + exactly 4 placements.
        let (mut s, _) = filled(&[0, 1, 2, 3], 16);
        let fresh: Vec<ElemId> = (100..104).map(ElemId).collect();
        let before = s.lifetime_moves();
        merge_sorted(&mut s, 0, 16, 4, &fresh);
        let swept = s.lifetime_moves() - before;
        assert!(swept <= 8, "one sweep should cost ≤ n moves, got {swept}");
        s.check_consistent();
    }

    #[test]
    fn merge_sorted_append_and_prepend_windows() {
        let (mut s, old) = filled(&[5, 6], 10);
        let head = [ElemId(100)];
        merge_sorted(&mut s, 0, 10, 0, &head); // prepend
        let tail = [ElemId(101)];
        merge_sorted(&mut s, 0, 10, 3, &tail); // append
        let order: Vec<ElemId> = s.iter_occupied().map(|(_, e)| e).collect();
        assert_eq!(order, vec![head[0], old[0], old[1], tail[0]]);
        s.check_consistent();
    }

    #[test]
    #[should_panic(expected = "merge_sorted")]
    fn merge_sorted_overflow_panics() {
        let (mut s, _) = filled(&[0, 1], 4);
        let fresh: Vec<ElemId> = (100..103).map(ElemId).collect();
        merge_sorted(&mut s, 0, 4, 2, &fresh);
    }

    #[test]
    fn spread_moves_expansion() {
        // Spread 0,1,2 -> 2,5,7 (all right-movers).
        let (mut s, ids) = filled(&[0, 1, 2], 8);
        spread_moves(&mut s, &[(0, 2), (1, 5), (2, 7)]);
        let got: Vec<(usize, ElemId)> = s.iter_occupied().collect();
        assert_eq!(got, vec![(2, ids[0]), (5, ids[1]), (7, ids[2])]);
    }

    #[test]
    fn bitmap_and_fenwick_agree_under_churn() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let m = 300;
        let mut s = SlotArray::new(m);
        let mut g = IdGen::new();
        for _ in 0..3000 {
            let p = rng.gen_range(0..m);
            if s.is_occupied(p) {
                s.remove(p);
            } else {
                s.place(p, g.fresh());
            }
            let q = rng.gen_range(0..m);
            let r = rng.gen_range(0..=m);
            assert_eq!(s.bits.count_in(q.min(r), r), s.occ.range(q.min(r), r) as usize);
            assert_eq!(s.next_occupied_at_or_after(q), s.occ.next_marked_at_or_after(q));
            assert_eq!(s.prev_occupied_at_or_before(q), s.occ.prev_marked_at_or_before(q));
            assert_eq!(s.next_free(q), s.occ.next_unmarked_at_or_after(q));
            assert_eq!(s.prev_free(q), s.occ.prev_unmarked_at_or_before(q));
        }
        s.check_consistent();
    }

    #[test]
    fn memory_is_eight_bytes_and_a_bit_per_slot() {
        let m = 1 << 12;
        let s = SlotArray::new(m);
        let per_slot = s.memory_bytes() as f64 / m as f64;
        // 8 (contents) + 1/8 (bitmap) + 4 (fenwick u32) and small slack.
        assert!(per_slot < 12.5, "per-slot memory {per_slot} too high");
        assert!(per_slot >= 12.125, "per-slot memory {per_slot} suspiciously low");
    }
}
