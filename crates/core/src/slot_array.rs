//! The physical slot array.
//!
//! A [`SlotArray`] is an array of `m` slots, each either free or holding one
//! [`ElemId`]. Every structure in this workspace performs **all** element
//! motion through this type, which gives three guarantees:
//!
//! 1. **Cost integrity** — each move/placement is appended to an internal
//!    move log; an operation's cost is the length of the log segment it
//!    produced, so algorithms cannot misreport their cost.
//! 2. **Safety discipline** — each move targets a free slot and (checked in
//!    debug builds) crosses no occupied slot, which is exactly the condition
//!    under which a single move preserves sorted order. Rebalances that obey
//!    the standard "rightmost-first when spreading right" discipline keep
//!    the array sorted after *every* atomic move — a property the paper's
//!    embedding relies on when it mirrors moves between layers.
//! 3. **Navigation** — an occupancy Fenwick tree answers rank ↔ position
//!    queries in O(log m).

use crate::fenwick::Fenwick;
use crate::ids::ElemId;
use crate::report::MoveRec;

/// An array of slots holding at most one element each, with an occupancy
/// index and an append-only move log.
#[derive(Clone, Debug)]
pub struct SlotArray {
    contents: Vec<Option<ElemId>>,
    occ: Fenwick,
    log: Vec<MoveRec>,
    /// Total moves ever logged (survives log draining).
    lifetime_moves: u64,
}

impl SlotArray {
    /// An empty array of `m` slots.
    pub fn new(m: usize) -> Self {
        Self { contents: vec![None; m], occ: Fenwick::new(m), log: Vec::new(), lifetime_moves: 0 }
    }

    /// Number of slots.
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.contents.len()
    }

    /// Number of stored elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.occ.total() as usize
    }

    /// True if no elements are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The element at `pos`, if any.
    #[inline]
    pub fn get(&self, pos: usize) -> Option<ElemId> {
        self.contents[pos]
    }

    /// True if `pos` holds an element.
    #[inline]
    pub fn is_occupied(&self, pos: usize) -> bool {
        self.contents[pos].is_some()
    }

    /// Occupancy Fenwick tree (read-only).
    #[inline]
    pub fn occ(&self) -> &Fenwick {
        &self.occ
    }

    /// Number of occupied slots in `[a, b)`.
    #[inline]
    pub fn occupied_in(&self, a: usize, b: usize) -> usize {
        self.occ.range(a, b) as usize
    }

    /// Position of the element of 0-based `rank`.
    ///
    /// Panics if `rank >= len`.
    #[inline]
    pub fn select(&self, rank: usize) -> usize {
        self.occ.select(rank as u64).unwrap_or_else(|| {
            panic!(
                "select: rank {rank} out of range ({} occupied of {} slots)",
                self.len(),
                self.num_slots()
            )
        })
    }

    /// Rank of the element at `pos` (number of elements strictly before it).
    ///
    /// `pos` itself need not be occupied; this returns how many elements
    /// precede position `pos`.
    #[inline]
    pub fn rank_at(&self, pos: usize) -> usize {
        self.occ.prefix(pos) as usize
    }

    /// First free slot at or after `pos`.
    #[inline]
    pub fn next_free(&self, pos: usize) -> Option<usize> {
        self.occ.next_unmarked_at_or_after(pos)
    }

    /// Last free slot at or before `pos`.
    #[inline]
    pub fn prev_free(&self, pos: usize) -> Option<usize> {
        self.occ.prev_unmarked_at_or_before(pos)
    }

    /// Place a brand-new element into a free slot. Logged as a move
    /// (`from == to`): the element is moved into the array, cost 1.
    pub fn place(&mut self, pos: usize, elem: ElemId) {
        assert!(
            self.contents[pos].is_none(),
            "place into occupied slot {pos} ({:?}; {} occupied of {} slots)",
            self.contents[pos],
            self.len(),
            self.num_slots()
        );
        self.contents[pos] = Some(elem);
        self.occ.add(pos, 1);
        self.log.push(MoveRec { elem, from: pos as u32, to: pos as u32 });
        self.lifetime_moves += 1;
    }

    /// Remove and return the element at `pos`. Cost 0 (removal is not a
    /// move in the paper's cost model).
    pub fn remove(&mut self, pos: usize) -> ElemId {
        let elem = self.contents[pos].take().unwrap_or_else(|| {
            panic!(
                "remove from empty slot {pos} ({} occupied of {} slots)",
                self.len(),
                self.num_slots()
            )
        });
        self.occ.add(pos, -1);
        elem
    }

    /// Move the element at `from` into the free slot `to`. Cost 1.
    ///
    /// Debug builds verify the move crosses no occupied slot — the local
    /// condition that guarantees sorted order is preserved.
    pub fn move_elem(&mut self, from: usize, to: usize) -> ElemId {
        if from == to {
            let elem = self.contents[from].expect("move from empty slot");
            return elem;
        }
        let elem = self.contents[from].take().unwrap_or_else(|| {
            panic!(
                "move {from}->{to} from empty slot ({} occupied of {} slots)",
                self.len(),
                self.num_slots()
            )
        });
        assert!(
            self.contents[to].is_none(),
            "move into occupied slot {to} ({:?}; {} occupied of {} slots)",
            self.contents[to],
            self.len(),
            self.num_slots()
        );
        debug_assert!(
            {
                let (a, b) = if from < to { (from + 1, to) } else { (to + 1, from) };
                self.occ.range(a, b) == 0
            },
            "move {from}->{to} crosses an occupied slot"
        );
        self.contents[to] = Some(elem);
        self.occ.add(from, -1);
        self.occ.add(to, 1);
        self.log.push(MoveRec { elem, from: from as u32, to: to as u32 });
        self.lifetime_moves += 1;
        elem
    }

    /// Drain all moves logged since the last drain.
    pub fn drain_log(&mut self) -> Vec<MoveRec> {
        std::mem::take(&mut self.log)
    }

    /// Moves logged since the last drain, without draining.
    #[inline]
    pub fn pending_log_len(&self) -> usize {
        self.log.len()
    }

    /// Total moves ever performed.
    #[inline]
    pub fn lifetime_moves(&self) -> u64 {
        self.lifetime_moves
    }

    /// Iterate `(position, elem)` over occupied slots in position order.
    pub fn iter_occupied(&self) -> impl Iterator<Item = (usize, ElemId)> + '_ {
        self.contents.iter().enumerate().filter_map(|(i, c)| c.map(|e| (i, e)))
    }

    /// Snapshot of the full layout.
    pub fn layout(&self) -> Vec<Option<ElemId>> {
        self.contents.clone()
    }

    /// Verify internal consistency (occupancy tree matches contents).
    /// O(m); test/diagnostic use only.
    pub fn check_consistent(&self) {
        let mut count = 0u64;
        for (i, c) in self.contents.iter().enumerate() {
            let marked = self.occ.range(i, i + 1) == 1;
            assert_eq!(c.is_some(), marked, "occupancy mismatch at {i}");
            if c.is_some() {
                count += 1;
            }
        }
        assert_eq!(count, self.occ.total(), "total mismatch");
    }
}

/// Move a set of elements within a window to new target positions, in an
/// order that keeps the array sorted after every atomic move.
///
/// `pairs` is a slice of `(current_pos, target_pos)` sorted by
/// `current_pos`, encoding an order-preserving relocation (targets are
/// strictly increasing too). Left-movers are executed left-to-right first,
/// then right-movers right-to-left; this never moves an element across an
/// occupied slot (see module docs).
pub fn spread_moves(slots: &mut SlotArray, pairs: &[(usize, usize)]) {
    debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
    for &(from, to) in pairs.iter() {
        if to < from {
            slots.move_elem(from, to);
        }
    }
    for &(from, to) in pairs.iter().rev() {
        if to > from {
            slots.move_elem(from, to);
        }
    }
}

/// Interleave a sorted run of new elements into the window `[a, b)` in one
/// evenly-spread sweep.
///
/// The `new_ids.len()` new elements enter at local rank `at` (0-based among
/// the window's current occupants, so `at == 0` prepends and `at == k`
/// appends), all consecutive. The window's occupants and the new elements
/// are re-spread together to the canonical even layout, old elements first
/// via the [`spread_moves`] discipline (their targets are free or vacated,
/// never crossing an occupied slot) and new elements placed afterwards into
/// the reserved — by then free — gaps. One pass, at most one move per old
/// element plus one placement per new element.
///
/// Returns `(elem, position)` for each new element in rank order. Panics if
/// the combined population exceeds the window.
pub fn merge_sorted(
    slots: &mut SlotArray,
    a: usize,
    b: usize,
    at: usize,
    new_ids: &[ElemId],
) -> Vec<(ElemId, u32)> {
    let k = slots.occupied_in(a, b);
    let total = k + new_ids.len();
    assert!(total <= b - a, "merge_sorted: {total} elements into {} slots", b - a);
    assert!(at <= k, "merge_sorted: local rank {at} > window population {k}");
    let targets = crate::density::even_targets(a, b, total);
    // Old occupants keep their order; targets at `at..at + new` are reserved
    // for the incoming run.
    let mut pairs = Vec::with_capacity(k);
    let mut i = 0usize;
    for pos in a..b {
        if slots.is_occupied(pos) {
            let t = if i < at { targets[i] } else { targets[i + new_ids.len()] };
            pairs.push((pos, t));
            i += 1;
        }
    }
    spread_moves(slots, &pairs);
    new_ids
        .iter()
        .enumerate()
        .map(|(j, &id)| {
            let pos = targets[at + j];
            slots.place(pos, id);
            (id, pos as u32)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::IdGen;

    fn filled(positions: &[usize], m: usize) -> (SlotArray, Vec<ElemId>) {
        let mut s = SlotArray::new(m);
        let mut g = IdGen::new();
        let mut ids = Vec::new();
        for &p in positions {
            let id = g.fresh();
            s.place(p, id);
            ids.push(id);
        }
        (s, ids)
    }

    #[test]
    fn place_remove_move() {
        let (mut s, ids) = filled(&[2, 5], 8);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(2), Some(ids[0]));
        s.move_elem(5, 7);
        assert_eq!(s.get(5), None);
        assert_eq!(s.get(7), Some(ids[1]));
        let e = s.remove(2);
        assert_eq!(e, ids[0]);
        assert_eq!(s.len(), 1);
        s.check_consistent();
    }

    #[test]
    fn move_log_records_everything() {
        let (mut s, _) = filled(&[0], 4);
        s.move_elem(0, 2);
        let log = s.drain_log();
        assert_eq!(log.len(), 2); // place + move
        assert_eq!(log[1].from, 0);
        assert_eq!(log[1].to, 2);
        assert_eq!(s.drain_log().len(), 0);
        assert_eq!(s.lifetime_moves(), 2);
    }

    #[test]
    #[should_panic(expected = "occupied")]
    fn move_into_occupied_panics() {
        let (mut s, _) = filled(&[0, 1], 4);
        s.move_elem(0, 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "crosses")]
    fn crossing_move_panics_in_debug() {
        let (mut s, _) = filled(&[0, 1], 4);
        s.move_elem(0, 3); // crosses occupied slot 1
    }

    #[test]
    fn rank_navigation() {
        let (s, ids) = filled(&[1, 4, 6], 8);
        assert_eq!(s.select(0), 1);
        assert_eq!(s.select(2), 6);
        assert_eq!(s.rank_at(5), 2);
        assert_eq!(s.rank_at(0), 0);
        assert_eq!(s.next_free(1), Some(2));
        assert_eq!(s.prev_free(6), Some(5));
        let got: Vec<ElemId> = s.iter_occupied().map(|(_, e)| e).collect();
        assert_eq!(got, ids);
    }

    #[test]
    fn spread_moves_keeps_order() {
        // Elements at 3,4,5 spread out to 1,4,7: left-mover, stay, right-mover.
        let (mut s, ids) = filled(&[3, 4, 5], 9);
        spread_moves(&mut s, &[(3, 1), (4, 4), (5, 7)]);
        let got: Vec<(usize, ElemId)> = s.iter_occupied().collect();
        assert_eq!(got, vec![(1, ids[0]), (4, ids[1]), (7, ids[2])]);
    }

    #[test]
    fn spread_moves_compaction() {
        // Pack 0,3,6 -> 0,1,2 (all left-movers).
        let (mut s, ids) = filled(&[0, 3, 6], 8);
        spread_moves(&mut s, &[(0, 0), (3, 1), (6, 2)]);
        let got: Vec<(usize, ElemId)> = s.iter_occupied().collect();
        assert_eq!(got, vec![(0, ids[0]), (1, ids[1]), (2, ids[2])]);
    }

    #[test]
    fn merge_sorted_interleaves_a_run() {
        // Occupants at 1, 4, 9; merge three new elements at local rank 1:
        // final order must be old0, new0, new1, new2, old1, old2.
        let (mut s, old) = filled(&[1, 4, 9], 12);
        let fresh: Vec<ElemId> = (100..103).map(ElemId).collect();
        let placed = merge_sorted(&mut s, 0, 12, 1, &fresh);
        assert_eq!(placed.len(), 3);
        s.check_consistent();
        assert_eq!(s.len(), 6);
        let order: Vec<ElemId> = s.iter_occupied().map(|(_, e)| e).collect();
        assert_eq!(order[0], old[0]);
        assert_eq!(&order[1..4], &fresh[..]);
        assert_eq!(order[4], old[1]);
        assert_eq!(order[5], old[2]);
        // Even spread: positions are the canonical targets for 6-of-12.
        let pos: Vec<usize> = s.iter_occupied().map(|(p, _)| p).collect();
        assert_eq!(pos, vec![0, 2, 4, 6, 8, 10]);
    }

    #[test]
    fn merge_sorted_costs_one_sweep() {
        // 4 occupants, 4 new: at most 4 old moves + exactly 4 placements.
        let (mut s, _) = filled(&[0, 1, 2, 3], 16);
        let fresh: Vec<ElemId> = (100..104).map(ElemId).collect();
        let before = s.lifetime_moves();
        merge_sorted(&mut s, 0, 16, 4, &fresh);
        let swept = s.lifetime_moves() - before;
        assert!(swept <= 8, "one sweep should cost ≤ n moves, got {swept}");
        s.check_consistent();
    }

    #[test]
    fn merge_sorted_append_and_prepend_windows() {
        let (mut s, old) = filled(&[5, 6], 10);
        let head = [ElemId(100)];
        merge_sorted(&mut s, 0, 10, 0, &head); // prepend
        let tail = [ElemId(101)];
        merge_sorted(&mut s, 0, 10, 3, &tail); // append
        let order: Vec<ElemId> = s.iter_occupied().map(|(_, e)| e).collect();
        assert_eq!(order, vec![head[0], old[0], old[1], tail[0]]);
        s.check_consistent();
    }

    #[test]
    #[should_panic(expected = "merge_sorted")]
    fn merge_sorted_overflow_panics() {
        let (mut s, _) = filled(&[0, 1], 4);
        let fresh: Vec<ElemId> = (100..103).map(ElemId).collect();
        merge_sorted(&mut s, 0, 4, 2, &fresh);
    }

    #[test]
    fn spread_moves_expansion() {
        // Spread 0,1,2 -> 2,5,7 (all right-movers).
        let (mut s, ids) = filled(&[0, 1, 2], 8);
        spread_moves(&mut s, &[(0, 2), (1, 5), (2, 7)]);
        let got: Vec<(usize, ElemId)> = s.iter_occupied().collect();
        assert_eq!(got, vec![(2, ids[0]), (5, ids[1]), (7, ids[2])]);
    }
}
