//! Fenwick (binary indexed) trees over slot positions.
//!
//! Every structure in this workspace needs O(log m) answers to:
//!
//! * `prefix(p)` — how many marked positions are `< p`?
//! * `select(k)` — where is the k-th (0-based) marked position?
//!
//! used for rank ↔ position navigation over occupancy bitmaps, slot-tag
//! counts, and the embedding's three parallel slot taxonomies.

/// A Fenwick tree over `len` positions holding small non-negative counts
/// (in this workspace: 0/1 occupancy marks).
#[derive(Clone, Debug)]
pub struct Fenwick {
    tree: Vec<u32>,
    len: usize,
    /// Largest power of two ≤ len, cached for `select`.
    top_pow: usize,
    total: u64,
}

impl Fenwick {
    /// An all-zero tree over `len` positions.
    pub fn new(len: usize) -> Self {
        let mut top_pow = 1;
        while top_pow * 2 <= len {
            top_pow *= 2;
        }
        Self { tree: vec![0; len + 1], len, top_pow, total: 0 }
    }

    /// Build from a 0/1 iterator in O(n).
    pub fn from_bits<I: IntoIterator<Item = bool>>(len: usize, bits: I) -> Self {
        let mut f = Self::new(len);
        for (i, b) in bits.into_iter().enumerate().take(len) {
            if b {
                f.add(i, 1);
            }
        }
        f
    }

    /// Number of positions the tree covers.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the tree covers zero positions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sum of all counts.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Add `delta` (may be negative) to position `pos`.
    #[inline]
    pub fn add(&mut self, pos: usize, delta: i32) {
        debug_assert!(pos < self.len, "fenwick add out of range: {pos} >= {}", self.len);
        self.total = (self.total as i64 + delta as i64) as u64;
        let mut i = pos + 1;
        while i <= self.len {
            self.tree[i] = (self.tree[i] as i64 + delta as i64) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Count of marks at positions strictly less than `pos`.
    #[inline]
    pub fn prefix(&self, pos: usize) -> u64 {
        let mut i = pos.min(self.len);
        let mut s = 0u64;
        while i > 0 {
            s += self.tree[i] as u64;
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Count of marks in the half-open range `[a, b)`.
    #[inline]
    pub fn range(&self, a: usize, b: usize) -> u64 {
        if a >= b {
            return 0;
        }
        self.prefix(b) - self.prefix(a)
    }

    /// Position of the k-th (0-based) marked position; `None` if `k >= total`.
    ///
    /// Assumes all counts are 0/1 (true throughout this workspace).
    pub fn select(&self, k: u64) -> Option<usize> {
        if k >= self.total {
            return None;
        }
        let mut pos = 0usize;
        let mut rem = k + 1; // we search for the first prefix ≥ k+1
        let mut step = self.top_pow;
        while step > 0 {
            let next = pos + step;
            if next <= self.len && (self.tree[next] as u64) < rem {
                rem -= self.tree[next] as u64;
                pos = next;
            }
            step >>= 1;
        }
        // pos is the count of positions with prefix < k+1; the mark is at index pos.
        Some(pos)
    }

    /// All point values, recovered in O(len) total: `tree[i]` aggregates
    /// the range `(i - lowbit(i), i]`, so the value at position `i-1` is
    /// `tree[i]` minus the sums of the sub-chains it absorbs. Summed over
    /// all `i` the chain lengths telescope to O(len). Used by consistency
    /// sweeps and bitmap-vs-Fenwick property tests.
    pub fn point_values(&self) -> Vec<u32> {
        let mut vals = vec![0u32; self.len];
        for i in 1..=self.len {
            let mut v = self.tree[i] as i64;
            let stop = i - (i & i.wrapping_neg());
            let mut j = i - 1;
            while j > stop {
                v -= self.tree[j] as i64;
                j -= j & j.wrapping_neg();
            }
            vals[i - 1] = v as u32;
        }
        vals
    }

    /// Heap bytes held by the tree.
    pub fn memory_bytes(&self) -> usize {
        self.tree.capacity() * std::mem::size_of::<u32>()
    }

    /// The first marked position at or after `pos`, if any.
    pub fn next_marked_at_or_after(&self, pos: usize) -> Option<usize> {
        let before = self.prefix(pos);
        self.select(before)
    }

    /// The last marked position at or before `pos`, if any.
    pub fn prev_marked_at_or_before(&self, pos: usize) -> Option<usize> {
        let upto = self.prefix(pos.saturating_add(1).min(self.len));
        // Account for pos >= len: clamp.
        let upto = if pos + 1 >= self.len { self.total } else { upto };
        if upto == 0 {
            None
        } else {
            self.select(upto - 1)
        }
    }

    /// The first UNmarked position at or after `pos` (within bounds), if any.
    ///
    /// Binary search over prefix sums of the complement; O(log² m) worst
    /// case, used on cold paths only.
    pub fn next_unmarked_at_or_after(&self, pos: usize) -> Option<usize> {
        if pos >= self.len {
            return None;
        }
        let zeros_before = pos as u64 - self.prefix(pos);
        // find smallest q in [pos, len) with (q+1 - prefix(q+1)) > zeros_before
        let (mut lo, mut hi) = (pos, self.len);
        // invariant: answer in [lo, hi) if it exists
        let total_zeros = self.len as u64 - self.total;
        if zeros_before >= total_zeros {
            return None;
        }
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let zeros_through_mid = (mid as u64 + 1) - self.prefix(mid + 1);
            if zeros_through_mid > zeros_before {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Some(lo)
    }

    /// The last UNmarked position at or before `pos`, if any.
    pub fn prev_unmarked_at_or_before(&self, pos: usize) -> Option<usize> {
        let pos = pos.min(self.len.saturating_sub(1));
        let zeros_through = (pos as u64 + 1) - self.prefix(pos + 1);
        if zeros_through == 0 {
            return None;
        }
        // find largest q ≤ pos that is unmarked: binary search for the
        // zeros_through-th zero (0-based index zeros_through-1)
        let target = zeros_through - 1;
        let (mut lo, mut hi) = (0usize, pos + 1);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let zeros_before_mid = mid as u64 - self.prefix(mid);
            if zeros_before_mid > target {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        // lo-1 is the position where the target-th zero lives
        Some(lo - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn marked(f: &Fenwick) -> Vec<usize> {
        (0..f.len()).filter(|&i| f.range(i, i + 1) == 1).collect()
    }

    #[test]
    fn add_prefix_roundtrip() {
        let mut f = Fenwick::new(10);
        f.add(3, 1);
        f.add(7, 1);
        f.add(9, 1);
        assert_eq!(f.prefix(0), 0);
        assert_eq!(f.prefix(4), 1);
        assert_eq!(f.prefix(8), 2);
        assert_eq!(f.prefix(10), 3);
        assert_eq!(f.total(), 3);
        f.add(7, -1);
        assert_eq!(f.prefix(10), 2);
    }

    #[test]
    fn select_finds_kth() {
        let mut f = Fenwick::new(16);
        for p in [0, 5, 6, 12, 15] {
            f.add(p, 1);
        }
        assert_eq!(f.select(0), Some(0));
        assert_eq!(f.select(1), Some(5));
        assert_eq!(f.select(2), Some(6));
        assert_eq!(f.select(3), Some(12));
        assert_eq!(f.select(4), Some(15));
        assert_eq!(f.select(5), None);
    }

    #[test]
    fn select_on_non_power_of_two() {
        let mut f = Fenwick::new(13);
        for p in [1, 2, 11, 12] {
            f.add(p, 1);
        }
        assert_eq!(f.select(3), Some(12));
        assert_eq!(marked(&f), vec![1, 2, 11, 12]);
    }

    #[test]
    fn neighbors_marked() {
        let mut f = Fenwick::new(10);
        for p in [2, 5, 8] {
            f.add(p, 1);
        }
        assert_eq!(f.next_marked_at_or_after(0), Some(2));
        assert_eq!(f.next_marked_at_or_after(3), Some(5));
        assert_eq!(f.next_marked_at_or_after(9), None);
        assert_eq!(f.prev_marked_at_or_before(9), Some(8));
        assert_eq!(f.prev_marked_at_or_before(4), Some(2));
        assert_eq!(f.prev_marked_at_or_before(1), None);
    }

    #[test]
    fn neighbors_unmarked() {
        let mut f = Fenwick::new(6);
        for p in [0, 1, 2, 4] {
            f.add(p, 1);
        }
        assert_eq!(f.next_unmarked_at_or_after(0), Some(3));
        assert_eq!(f.next_unmarked_at_or_after(4), Some(5));
        assert_eq!(f.prev_unmarked_at_or_before(5), Some(5));
        assert_eq!(f.prev_unmarked_at_or_before(4), Some(3));
        assert_eq!(f.prev_unmarked_at_or_before(2), None);
        let full = Fenwick::from_bits(3, [true, true, true]);
        assert_eq!(full.next_unmarked_at_or_after(0), None);
    }

    #[test]
    fn point_values_recover_marks() {
        for n in [1, 2, 13, 64, 100] {
            let mut f = Fenwick::new(n);
            for p in (0..n).step_by(3) {
                f.add(p, 1);
            }
            let vals = f.point_values();
            for (i, &v) in vals.iter().enumerate() {
                assert_eq!(v, (i % 3 == 0) as u32, "n={n} pos={i}");
            }
        }
    }

    #[test]
    fn from_bits_matches_adds() {
        let bits = [true, false, true, true, false];
        let f = Fenwick::from_bits(5, bits.iter().copied());
        assert_eq!(marked(&f), vec![0, 2, 3]);
    }

    #[test]
    fn randomized_against_naive() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let n = rng.gen_range(1..100);
            let mut naive = vec![false; n];
            let mut f = Fenwick::new(n);
            for _ in 0..200 {
                let p = rng.gen_range(0..n);
                if naive[p] {
                    naive[p] = false;
                    f.add(p, -1);
                } else {
                    naive[p] = true;
                    f.add(p, 1);
                }
            }
            let marks: Vec<usize> = (0..n).filter(|&i| naive[i]).collect();
            assert_eq!(marked(&f), marks);
            for (k, &p) in marks.iter().enumerate() {
                assert_eq!(f.select(k as u64), Some(p));
            }
            assert_eq!(f.select(marks.len() as u64), None);
        }
    }
}
