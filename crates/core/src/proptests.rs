//! Property-based tests for the core substrate: Fenwick trees against a
//! naive model, slot-array move discipline, density-tree geometry, and the
//! PMA skeleton under arbitrary valid operation sequences.

use crate::density::{even_targets, SegTree};
use crate::fenwick::Fenwick;
use crate::ops::Op;
use crate::pma::ClassicBuilder;
use crate::testkit::run_against_oracle;
use crate::traits::LabelingBuilder;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Fenwick prefix/select/neighbor queries agree with a bit-vector model.
    #[test]
    fn fenwick_matches_model(bits in proptest::collection::vec(any::<bool>(), 1..200)) {
        let n = bits.len();
        let f = Fenwick::from_bits(n, bits.iter().copied());
        // prefix counts
        let mut count = 0u64;
        for (i, &bit) in bits.iter().enumerate() {
            prop_assert_eq!(f.prefix(i), count);
            if bit {
                count += 1;
            }
        }
        prop_assert_eq!(f.total(), count);
        // select is the inverse of prefix on marked positions
        let marked: Vec<usize> = (0..n).filter(|&i| bits[i]).collect();
        for (k, &p) in marked.iter().enumerate() {
            prop_assert_eq!(f.select(k as u64), Some(p));
        }
        prop_assert_eq!(f.select(marked.len() as u64), None);
        // neighbor queries agree with linear scans
        for probe in 0..n {
            prop_assert_eq!(
                f.next_marked_at_or_after(probe),
                (probe..n).find(|&i| bits[i])
            );
            prop_assert_eq!(
                f.prev_marked_at_or_before(probe),
                (0..=probe).rev().find(|&i| bits[i])
            );
            prop_assert_eq!(
                f.next_unmarked_at_or_after(probe),
                (probe..n).find(|&i| !bits[i])
            );
            prop_assert_eq!(
                f.prev_unmarked_at_or_before(probe),
                (0..=probe).rev().find(|&i| !bits[i])
            );
        }
    }

    /// Segment-tree geometry: every slot belongs to exactly one segment;
    /// windows nest and tile the array.
    #[test]
    fn segtree_geometry(m in 2usize..5000) {
        let t = SegTree::new(m);
        prop_assert!(t.num_segs().is_power_of_two());
        prop_assert_eq!(t.seg_start(0), 0);
        prop_assert_eq!(t.seg_start(t.num_segs()), m);
        for pos in (0..m).step_by((m / 64).max(1)) {
            let s = t.seg_of(pos);
            prop_assert!(t.seg_start(s) <= pos && pos < t.seg_start(s + 1));
            // windows nest up the tree
            let mut prev = t.window(0, s);
            for level in 1..=t.height() {
                let w = t.window(level, s);
                prop_assert!(w.0 <= prev.0 && prev.1 <= w.1);
                prev = w;
            }
            prop_assert_eq!(t.window(t.height(), s), (0, m));
        }
    }

    /// Even targets are strictly increasing, in range, and near-uniform.
    #[test]
    fn even_targets_valid(w in 1usize..500, kfrac in 0.0f64..1.0) {
        let k = ((w as f64) * kfrac) as usize;
        let ts = even_targets(100, 100 + w, k);
        prop_assert_eq!(ts.len(), k);
        prop_assert!(ts.iter().all(|&t| (100..100 + w).contains(&t)));
        prop_assert!(ts.windows(2).all(|p| p[0] < p[1]));
        if k >= 2 {
            let gaps: Vec<usize> = ts.windows(2).map(|p| p[1] - p[0]).collect();
            let mn = gaps.iter().min().unwrap();
            let mx = gaps.iter().max().unwrap();
            prop_assert!(mx - mn <= 1, "uneven spread: {gaps:?}");
        }
    }

    /// The classical PMA stays oracle-consistent under arbitrary valid
    /// sequences (the skeleton every variant builds on).
    #[test]
    fn classic_pma_arbitrary_ops(raw in proptest::collection::vec((any::<u8>(), any::<u32>()), 1..400)) {
        let cap = 100;
        let mut ops = Vec::new();
        let mut len = 0usize;
        for (b, r) in raw {
            let insert = len == 0 || (len < cap && b % 3 != 0);
            if insert {
                ops.push(Op::Insert(r as usize % (len + 1)));
                len += 1;
            } else {
                ops.push(Op::Delete(r as usize % len));
                len -= 1;
            }
        }
        let mut pma = ClassicBuilder.build_default(cap);
        run_against_oracle(&mut pma, &ops, 43);
    }
}
