//! The `ListLabeling` trait and composable builders.
//!
//! Every algorithm in this workspace — the classical PMA, its deamortized,
//! randomized, adaptive and learning-augmented variants, and the paper's
//! embedding `F ⊳ R` itself — implements [`ListLabeling`]. That uniformity
//! is what makes Theorem 3's double composition `X ⊳ (Y ⊳ Z)` a one-liner:
//! `Embed<X, Embed<Y, Z>>`.
//!
//! [`LabelingBuilder`] abstracts construction: a structure is built for a
//! given `(capacity, num_slots)` pair. The embedding needs this because §3
//! of the paper prescribes exact slot budgets for its inner structures
//! (F gets `(1+ε)n` slots; R gets all `(1+3ε)n` slots with capacity
//! `(1+2ε)n`).

use crate::ids::ElemId;
use crate::metrics::MetricsHandle;
use crate::ops::Op;
use crate::report::{BulkReport, OpReport};
use crate::slot_array::SlotArray;

/// A list-labeling data structure of fixed capacity `n` over `m` slots
/// (Definition 1 of the paper, 0-based ranks).
pub trait ListLabeling {
    /// Maximum number of elements the structure may hold.
    fn capacity(&self) -> usize;

    /// Number of physical slots (`m = (1+Θ(1))·n`).
    fn num_slots(&self) -> usize;

    /// Current number of stored elements.
    fn len(&self) -> usize;

    /// True if no elements are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a new element at 0-based `rank` (`rank ∈ 0..=len`).
    ///
    /// Panics if `rank > len` or the structure is full.
    fn insert(&mut self, rank: usize) -> OpReport;

    /// Delete the element of 0-based `rank` (`rank ∈ 0..len`).
    ///
    /// Panics if `rank >= len`.
    fn delete(&mut self, rank: usize) -> OpReport;

    /// [`insert`](Self::insert) reporting into a caller-provided buffer:
    /// `out` is cleared and refilled, keeping its move-buffer allocation.
    /// The default delegates to `insert` (correct, but allocates);
    /// structures with a native zero-allocation path override it to drain
    /// the slot array's move log straight into `out` — in steady state a
    /// point insert then touches the heap not at all.
    fn insert_into(&mut self, rank: usize, out: &mut OpReport) {
        *out = self.insert(rank);
    }

    /// [`delete`](Self::delete) into a caller-provided buffer (see
    /// [`insert_into`](Self::insert_into)).
    fn delete_into(&mut self, rank: usize, out: &mut OpReport) {
        *out = self.delete(rank);
    }

    /// [`splice`](Self::splice) into a caller-provided buffer (see
    /// [`insert_into`](Self::insert_into)).
    fn splice_into(&mut self, rank: usize, count: usize, out: &mut BulkReport) {
        *out = self.splice(rank, count);
    }

    /// Insert `count` new elements at consecutive final ranks
    /// `rank .. rank + count` — the batch-ingest primitive. Returns one
    /// [`BulkReport`] covering the whole batch, with the new identities in
    /// rank order.
    ///
    /// The default decomposes into `count` single insertions (always
    /// correct, never cheaper). Algorithms with a native bulk path override
    /// it: the PMA skeleton ([`PmaBase`](crate::pma::PmaBase)) interleaves
    /// the run into one window rebalance via
    /// [`merge_sorted`](crate::slot_array::merge_sorted), costing one
    /// evenly-spread sweep instead of `count` independent rebalance
    /// cascades.
    ///
    /// Panics if `rank > len` or `len + count > capacity`.
    fn splice(&mut self, rank: usize, count: usize) -> BulkReport {
        assert!(rank <= self.len(), "splice rank {rank} > len {}", self.len());
        assert!(
            self.len() + count <= self.capacity(),
            "splice of {count} overflows capacity {} (len {})",
            self.capacity(),
            self.len()
        );
        let mut bulk = BulkReport::default();
        for i in 0..count {
            bulk.absorb_op(self.insert(rank + i));
        }
        bulk
    }

    /// Apply one operation.
    fn apply(&mut self, op: Op) -> OpReport {
        match op {
            Op::Insert(r) => self.insert(r),
            Op::Delete(r) => self.delete(r),
        }
    }

    /// The physical slot array (the authoritative layout). The label of an
    /// element, in the classical list-labeling formulation, is its position
    /// here.
    fn slots(&self) -> &SlotArray;

    /// Install a shared [`MetricsHandle`]
    /// into this structure and every layer inside it (its slot array(s),
    /// and for composite structures — the embedding — both constituents),
    /// so one handle observes the whole stack. The default ignores the
    /// handle, which keeps the trait object-safe and lets minimal
    /// implementations opt out; every PMA-skeleton backend overrides it.
    fn set_metrics(&mut self, metrics: MetricsHandle) {
        let _ = metrics;
    }

    /// The label (slot position) of the element with the given rank.
    fn label_of_rank(&self, rank: usize) -> usize {
        self.slots().select(rank)
    }

    /// The element with the given rank.
    fn elem_at_rank(&self, rank: usize) -> ElemId {
        let pos = self.slots().select(rank);
        self.slots().get(pos).expect("select returned empty slot")
    }

    /// Iterate `(rank, label, element)` over the rank range `lo..hi` — a
    /// physically contiguous left-to-right sweep of the slot array, which
    /// is what makes PMA-backed range scans cache-friendly.
    fn iter_range(&self, lo: usize, hi: usize) -> RangeIter<'_> {
        let hi = hi.min(self.len());
        let start = if lo >= hi { None } else { Some(self.slots().select(lo)) };
        RangeIter { slots: self.slots(), next_rank: lo, end_rank: hi, next_pos: start }
    }

    /// Short human-readable algorithm name (for tables and plots).
    fn name(&self) -> &'static str;
}

/// A recipe for building a [`ListLabeling`] with prescribed capacity and
/// slot count. Builders are cheap, cloneable value types; composite
/// builders (the embedding's) contain their inner builders.
pub trait LabelingBuilder: Clone {
    /// The structure this builder produces.
    type Structure: ListLabeling;

    /// Build a structure holding up to `capacity` elements on exactly
    /// `num_slots` slots. Implementations must accept any
    /// `num_slots ≥ ceil(min_slack() · capacity)`.
    fn build(&self, capacity: usize, num_slots: usize) -> Self::Structure;

    /// The minimum slot-to-capacity ratio this algorithm needs (e.g. 1.25
    /// means `m ≥ 1.25·n`). Used by callers that pick `m` for you.
    fn min_slack(&self) -> f64 {
        1.25
    }

    /// Build with a default slot budget of `ceil(min_slack() · capacity)`.
    fn build_default(&self, capacity: usize) -> Self::Structure {
        let m = ((capacity as f64) * self.min_slack()).ceil() as usize + 2;
        self.build(capacity, m)
    }

    /// A hint for the structure's expected amortized cost per operation at
    /// this capacity — the `E_R` of Theorem 2. The embedding uses this to
    /// budget rebuild work. (Shape matters, constants are calibrated by the
    /// embedding's own configuration.)
    fn expected_cost_hint(&self, capacity: usize) -> f64;

    /// A hint for the structure's worst-case cost per operation — the `W_R`
    /// of Theorem 2.
    fn worst_case_hint(&self, capacity: usize) -> f64 {
        let lg = (capacity.max(2) as f64).log2();
        lg * lg
    }
}

/// Iterator over a rank range: yields `(rank, label, element)` in rank
/// order by walking occupied slots left to right.
pub struct RangeIter<'a> {
    slots: &'a SlotArray,
    next_rank: usize,
    end_rank: usize,
    next_pos: Option<usize>,
}

impl Iterator for RangeIter<'_> {
    type Item = (usize, usize, ElemId);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next_rank >= self.end_rank {
            return None;
        }
        let pos = self.next_pos?;
        let elem = self.slots.get(pos).expect("range iterator on free slot");
        let item = (self.next_rank, pos, elem);
        self.next_rank += 1;
        self.next_pos = if self.next_rank < self.end_rank {
            self.slots.next_occupied_at_or_after(pos + 1)
        } else {
            None
        };
        Some(item)
    }
}

/// log₂ clamped below at 1.0 — common in cost hints.
pub fn log2f(n: usize) -> f64 {
    (n.max(2) as f64).log2().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::IdGen;

    /// A minimal trait implementation used to exercise the defaults: an
    /// unsorted-capable but order-maintaining shift array (O(n) moves).
    struct Shifty {
        slots: SlotArray,
        ids: IdGen,
        cap: usize,
    }

    impl Shifty {
        fn new(cap: usize, m: usize) -> Self {
            Self { slots: SlotArray::new(m), ids: IdGen::new(), cap }
        }
    }

    impl ListLabeling for Shifty {
        fn capacity(&self) -> usize {
            self.cap
        }
        fn num_slots(&self) -> usize {
            self.slots.num_slots()
        }
        fn len(&self) -> usize {
            self.slots.len()
        }
        fn insert(&mut self, rank: usize) -> OpReport {
            assert!(rank <= self.len());
            assert!(self.len() < self.cap);
            // keep elements packed in a prefix: shift suffix right by one
            let len = self.len();
            for r in (rank..len).rev() {
                self.slots.move_elem(r, r + 1);
            }
            let id = self.ids.fresh();
            self.slots.place(rank, id);
            OpReport {
                moves: self.slots.drain_log(),
                placed: Some((id, rank as u32)),
                removed: None,
            }
        }
        fn delete(&mut self, rank: usize) -> OpReport {
            assert!(rank < self.len());
            let id = self.slots.remove(rank);
            let len = self.len();
            for r in rank..len {
                self.slots.move_elem(r + 1, r);
            }
            OpReport {
                moves: self.slots.drain_log(),
                placed: None,
                removed: Some((id, rank as u32)),
            }
        }
        fn slots(&self) -> &SlotArray {
            &self.slots
        }
        fn name(&self) -> &'static str {
            "shifty"
        }
    }

    #[test]
    fn trait_defaults_work() {
        let mut s = Shifty::new(4, 8);
        assert!(s.is_empty());
        let r = s.insert(0);
        assert_eq!(r.cost(), 1);
        s.insert(0); // new smallest
        s.insert(2); // new largest
        assert_eq!(s.len(), 3);
        assert_eq!(s.label_of_rank(0), 0);
        let first = s.elem_at_rank(0);
        let r = s.apply(Op::Delete(0));
        assert_eq!(r.removed.map(|(e, _)| e), Some(first));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn shift_costs_are_linear() {
        let mut s = Shifty::new(8, 16);
        for _ in 0..8 {
            s.insert(0);
        }
        // inserting at rank 0 repeatedly shifts the whole prefix
        let mut t = Shifty::new(8, 16);
        let mut costs = Vec::new();
        for _ in 0..8 {
            costs.push(t.insert(0).cost());
        }
        assert_eq!(costs, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn iter_range_walks_ranks() {
        let mut s = Shifty::new(8, 16);
        for i in 0..6 {
            s.insert(i);
        }
        let items: Vec<(usize, usize, ElemId)> = s.iter_range(1, 4).collect();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].0, 1);
        assert_eq!(items[2].0, 3);
        // labels increase, elements match elem_at_rank
        assert!(items.windows(2).all(|w| w[0].1 < w[1].1));
        for &(r, _, e) in &items {
            assert_eq!(e, s.elem_at_rank(r));
        }
        // degenerate ranges
        assert_eq!(s.iter_range(4, 4).count(), 0);
        assert_eq!(s.iter_range(5, 100).count(), 1);
    }

    #[test]
    fn log2f_clamps() {
        assert_eq!(log2f(0), 1.0);
        assert_eq!(log2f(2), 1.0);
        assert!((log2f(1024) - 10.0).abs() < 1e-9);
    }
}
