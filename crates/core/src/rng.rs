//! Deterministic, seedable randomness.
//!
//! The paper's adversary model is *oblivious*: input sequences are fixed in
//! advance, independent of the structures' random bits (`rand(F)`,
//! `rand(R)`). We model each structure's random tape as a seeded
//! [`rand::rngs::StdRng`]; experiments derive independent per-structure
//! seeds from one experiment seed so that runs are reproducible and the
//! independence assumptions of Lemma 4 hold by construction.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Create a deterministic RNG from a seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive a sub-seed for a named component from a master seed.
///
/// SplitMix64-style mixing: well-distributed, stable across runs, and cheap.
/// Used to give each layer of a composed structure (and each workload) its
/// own independent random tape.
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut z = master ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic() {
        let mut a = rng_from_seed(7);
        let mut b = rng_from_seed(7);
        let xs: Vec<u64> = (0..10).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn derived_streams_differ() {
        let s0 = derive_seed(42, 0);
        let s1 = derive_seed(42, 1);
        let s0_again = derive_seed(42, 0);
        assert_ne!(s0, s1);
        assert_eq!(s0, s0_again);
    }
}
