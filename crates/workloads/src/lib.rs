//! # lll-workloads — deterministic workload generators
//!
//! Every experiment in this workspace consumes operation sequences from
//! here. All generators are seeded and deterministic (the paper's oblivious
//! adversary: inputs are fixed before the structures' random tapes are
//! drawn), and every sequence is validated by construction (ranks are
//! always legal for the running length).
//!
//! Workload catalogue (mapping to experiments in EXPERIMENTS.md):
//!
//! * [`uniform_random_inserts`] / [`uniform_churn`] — the oblivious random
//!   workloads under which the randomized structure `Y` shines (E4, E5,
//!   E10, E11).
//! * [`hammer_inserts`] — the Bender–Hu hammer-insert workload (insertions
//!   repeatedly at one rank) on which the adaptive `X` achieves O(log n)
//!   (Corollary 11; E5, E10).
//! * [`sequential_inserts`] / [`descending_inserts`] — sorted bulk loads,
//!   the databases' bulk-load motivation from §1 (E5, E6, E10).
//! * [`random_walk_inserts`], [`zipf_inserts`], [`bulk_runs`] — skewed and
//!   clustered patterns used for coverage.
//! * [`adversarial_packed`] — a semi-adaptive dense-region attack used to
//!   probe worst-case behavior (E4, E11).
//! * [`with_predictions`] — wraps an insert-only workload with an oracle
//!   rank predictor of bounded error η (Corollary 12; E6).

#![forbid(unsafe_code)]

use lll_core::ops::Op;
use lll_core::rng::rng_from_seed;
use rand::Rng;

/// A named operation sequence.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Human-readable name (appears in experiment tables).
    pub name: String,
    /// The operations, valid from an empty structure.
    pub ops: Vec<Op>,
    /// The maximum live size reached (structures need at least this
    /// capacity).
    pub peak: usize,
}

impl Workload {
    fn new(name: impl Into<String>, ops: Vec<Op>) -> Self {
        let mut len = 0usize;
        let mut peak = 0usize;
        for op in &ops {
            assert!(op.valid_for_len(len), "generated invalid op {op:?} at len {len}");
            len = (len as isize + op.delta_len()) as usize;
            peak = peak.max(len);
        }
        Self { name: name.into(), ops, peak }
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if there are no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// `n` insertions at uniformly random ranks (the canonical oblivious
/// workload).
pub fn uniform_random_inserts(n: usize, seed: u64) -> Workload {
    let mut rng = rng_from_seed(seed);
    let ops = (0..n).map(|len| Op::Insert(rng.gen_range(0..=len))).collect();
    Workload::new(format!("uniform-random(n={n})"), ops)
}

/// Fill to `n`, then `steady` alternating random delete/insert pairs
/// keeping the size at `n` (steady-state churn).
pub fn uniform_churn(n: usize, steady: usize, seed: u64) -> Workload {
    let mut rng = rng_from_seed(seed);
    let mut ops: Vec<Op> = (0..n).map(|len| Op::Insert(rng.gen_range(0..=len))).collect();
    for _ in 0..steady {
        ops.push(Op::Delete(rng.gen_range(0..n)));
        ops.push(Op::Insert(rng.gen_range(0..n)));
    }
    Workload::new(format!("uniform-churn(n={n},steady={steady})"), ops)
}

/// `n` insertions all at the same rank — the hammer-insert workload of
/// Bender–Hu \[18\] (rank 0 = always-new-smallest).
pub fn hammer_inserts(n: usize, rank: usize) -> Workload {
    let ops = (0..n).map(|len| Op::Insert(rank.min(len))).collect();
    Workload::new(format!("hammer(n={n},rank={rank})"), ops)
}

/// `n` insertions at the end (ascending sorted bulk load).
pub fn sequential_inserts(n: usize) -> Workload {
    let ops = (0..n).map(Op::Insert).collect();
    Workload::new(format!("sequential(n={n})"), ops)
}

/// `n` insertions at the front (descending sorted bulk load; every insert
/// is rank 0, and arrival `i` has final rank `n-1-i`).
pub fn descending_inserts(n: usize) -> Workload {
    let ops = vec![Op::Insert(0); n];
    Workload::new(format!("descending(n={n})"), ops)
}

/// Insertions whose rank performs a reflected ±step random walk — locally
/// clustered but drifting.
pub fn random_walk_inserts(n: usize, max_step: usize, seed: u64) -> Workload {
    let mut rng = rng_from_seed(seed);
    let mut pos = 0isize;
    let mut ops = Vec::with_capacity(n);
    for len in 0..n {
        let step = rng.gen_range(0..=max_step) as isize;
        pos += if rng.gen_bool(0.5) { step } else { -step };
        pos = pos.clamp(0, len as isize);
        ops.push(Op::Insert(pos as usize));
    }
    Workload::new(format!("random-walk(n={n},step={max_step})"), ops)
}

/// Insertions at ranks drawn from a Zipf-like distribution over the current
/// prefix (heavily skewed toward the front).
pub fn zipf_inserts(n: usize, exponent: f64, seed: u64) -> Workload {
    let mut rng = rng_from_seed(seed);
    let mut ops = Vec::with_capacity(n);
    for len in 0..n {
        // inverse-CDF sample of a bounded Pareto over [1, len+1]
        let u: f64 = rng.gen_range(0.0..1.0);
        let max = (len + 1) as f64;
        let r = if exponent == 1.0 {
            max.powf(u)
        } else {
            let a = 1.0 - exponent;
            ((max.powf(a) - 1.0) * u + 1.0).powf(1.0 / a)
        };
        let rank = (r.floor() as usize - 1).min(len);
        ops.push(Op::Insert(rank));
    }
    Workload::new(format!("zipf(n={n},s={exponent})"), ops)
}

/// Bulk loads: `runs` sorted runs of length `run_len`, each inserted
/// ascending at a random anchor (database batch ingestion).
pub fn bulk_runs(runs: usize, run_len: usize, seed: u64) -> Workload {
    let mut rng = rng_from_seed(seed);
    let mut ops = Vec::with_capacity(runs * run_len);
    let mut len = 0usize;
    for _ in 0..runs {
        let anchor = rng.gen_range(0..=len);
        for j in 0..run_len {
            ops.push(Op::Insert((anchor + j).min(len)));
            len += 1;
        }
    }
    Workload::new(format!("bulk(runs={runs},len={run_len})"), ops)
}

/// A semi-adaptive attack: insertions concentrate into an ever-narrowing
/// band of ranks, packing one region as densely as the structure allows.
/// (Still oblivious — the sequence is fixed in advance — but shaped to
/// stress rebalance cascades.)
pub fn adversarial_packed(n: usize, seed: u64) -> Workload {
    let mut rng = rng_from_seed(seed);
    let mut ops = Vec::with_capacity(n);
    let mut lo = 0usize;
    for len in 0..n {
        // band tightens as the structure fills
        let width = (n - len).max(1).ilog2() as usize + 1;
        let band_lo = lo.min(len);
        let band_hi = (band_lo + width).min(len);
        let rank = rng.gen_range(band_lo..=band_hi);
        ops.push(Op::Insert(rank));
        if len % 64 == 63 {
            lo = rng.gen_range(0..=len / 2); // relocate the attack band
        }
    }
    Workload::new(format!("adversarial-packed(n={n})"), ops)
}

/// An insert-only workload together with per-insertion predicted final
/// ranks whose maximum error is at most `eta` (Corollary 12's setup).
#[derive(Clone, Debug)]
pub struct PredictedWorkload {
    /// The operations.
    pub workload: Workload,
    /// One predicted final rank per insertion, in arrival order.
    pub predictions: Vec<usize>,
    /// The error bound used to generate the predictions.
    pub eta: usize,
}

/// Compute the true final ranks of an insert-only sequence, then perturb
/// them by ±η uniformly.
///
/// Final ranks are computed by replaying the sequence and tracking where
/// each arrival ends after all later insertions shift it.
pub fn with_predictions(workload: Workload, eta: usize, seed: u64) -> PredictedWorkload {
    assert!(workload.ops.iter().all(|op| op.is_insert()), "predictions need insert-only");
    let n = workload.ops.len();
    // Replay: maintain the arrival index of each current rank.
    let mut order: Vec<usize> = Vec::with_capacity(n);
    for (i, op) in workload.ops.iter().enumerate() {
        order.insert(op.rank(), i);
    }
    // order[r] = arrival index of the element with final rank r
    let mut final_rank = vec![0usize; n];
    for (r, &arrival) in order.iter().enumerate() {
        final_rank[arrival] = r;
    }
    let mut rng = rng_from_seed(seed);
    let predictions = final_rank
        .iter()
        .map(|&f| {
            if eta == 0 {
                f
            } else {
                let noise = rng.gen_range(0..=2 * eta) as isize - eta as isize;
                (f as isize + noise).clamp(0, n as isize - 1) as usize
            }
        })
        .collect();
    PredictedWorkload { workload, predictions, eta }
}

/// The standard experiment suite at size `n` (E4/E5/E10 use exactly these).
pub fn standard_suite(n: usize, seed: u64) -> Vec<Workload> {
    vec![
        uniform_random_inserts(n, seed),
        hammer_inserts(n, 0),
        sequential_inserts(n),
        random_walk_inserts(n, 4, seed.wrapping_add(1)),
        zipf_inserts(n, 1.2, seed.wrapping_add(2)),
        adversarial_packed(n, seed.wrapping_add(3)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lll_core::ops::check_sequence;

    #[test]
    fn all_generators_produce_valid_sequences() {
        let n = 500;
        for w in standard_suite(n, 42) {
            assert_eq!(check_sequence(0, &w.ops), Some(w.peak), "{} invalid", w.name);
            assert_eq!(w.len(), n);
        }
        let churn = uniform_churn(200, 300, 1);
        assert!(check_sequence(0, &churn.ops).is_some());
        assert_eq!(churn.peak, 200);
        let bulk = bulk_runs(10, 50, 2);
        assert!(check_sequence(0, &bulk.ops).is_some());
    }

    #[test]
    fn generators_are_deterministic() {
        let a = uniform_random_inserts(300, 7);
        let b = uniform_random_inserts(300, 7);
        assert_eq!(a.ops, b.ops);
        let c = uniform_random_inserts(300, 8);
        assert_ne!(a.ops, c.ops);
    }

    #[test]
    fn hammer_is_constant_rank() {
        let w = hammer_inserts(100, 0);
        assert!(w.ops.iter().all(|op| matches!(op, Op::Insert(0))));
        let w5 = hammer_inserts(100, 5);
        // once len > 5, rank is exactly 5
        assert!(w5.ops[6..].iter().all(|op| matches!(op, Op::Insert(5))));
    }

    #[test]
    fn predictions_have_bounded_error() {
        let n = 400;
        let eta = 25;
        let w = with_predictions(descending_inserts(n), eta, 3);
        // descending arrival i has true final rank n-1-i
        for (i, &p) in w.predictions.iter().enumerate() {
            let truth = n - 1 - i;
            let err = (p as isize - truth as isize).unsigned_abs();
            assert!(err <= eta, "prediction error {err} > η={eta}");
        }
    }

    #[test]
    fn perfect_predictions_match_truth_for_sequential() {
        let n = 300;
        let w = with_predictions(sequential_inserts(n), 0, 1);
        // ascending arrival i has final rank i
        for (i, &p) in w.predictions.iter().enumerate() {
            assert_eq!(p, i);
        }
    }

    #[test]
    fn zipf_is_skewed_frontward() {
        let w = zipf_inserts(2000, 1.5, 5);
        let front = w.ops.iter().filter(|op| op.rank() < 10).count();
        assert!(front > w.len() / 4, "zipf should hit the front often: {front}");
    }

    #[test]
    fn random_walk_moves_locally() {
        let w = random_walk_inserts(1000, 3, 9);
        let mut prev = 0isize;
        let mut big_jumps = 0;
        for op in &w.ops {
            let r = op.rank() as isize;
            if (r - prev).abs() > 3 {
                big_jumps += 1;
            }
            prev = r;
        }
        assert_eq!(big_jumps, 0, "walk steps exceed max_step");
    }
}
