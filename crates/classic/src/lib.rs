//! # lll-classic — the classical packed-memory array
//!
//! The 1981 Itai–Konheim–Rodeh algorithm [31 in the paper]: elements live in
//! an array of `(1+Θ(1))n` slots organized as a calibrator tree with
//! linearly interpolated density thresholds; an insertion that pushes a leaf
//! past its threshold rebalances (evenly re-spreads) the smallest
//! within-threshold ancestor window. Amortized cost **O(log² n)** per
//! operation — the baseline every improvement in the paper is measured
//! against, and the default reliable substrate `R` for the embedding.
//!
//! Also provided: [`ShiftArray`], the naive O(n)-per-operation baseline that
//! keeps elements packed in a prefix (what you get with a plain `Vec`), used
//! by experiment E10 to anchor the scaling plots.

#![forbid(unsafe_code)]

pub mod shift_array;

pub use lll_core::pma::{ClassicBuilder, ClassicPolicy, PmaBase};
pub use shift_array::{ShiftArray, ShiftArrayBuilder};

/// The classical PMA type.
pub type ClassicPma = PmaBase<ClassicPolicy>;

#[cfg(test)]
mod tests {
    use super::*;
    use lll_core::ops::Op;
    use lll_core::testkit::{fit_log_exponent, run_against_oracle};
    use lll_core::traits::{LabelingBuilder, ListLabeling};
    use rand::{Rng, SeedableRng};

    fn random_insert_ops(n: usize, seed: u64) -> Vec<Op> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|len| Op::Insert(rng.gen_range(0..=len))).collect()
    }

    #[test]
    fn oracle_random_inserts() {
        let n = 1000;
        let mut pma = ClassicBuilder.build(n, n * 13 / 10);
        run_against_oracle(&mut pma, &random_insert_ops(n, 7), 97);
    }

    #[test]
    fn oracle_mixed_churn() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let n = 400;
        let mut ops = Vec::new();
        let mut len = 0usize;
        for _ in 0..4000 {
            if len == 0 || (len < n && rng.gen_bool(0.55)) {
                ops.push(Op::Insert(rng.gen_range(0..=len)));
                len += 1;
            } else {
                ops.push(Op::Delete(rng.gen_range(0..len)));
                len -= 1;
            }
        }
        let mut pma = ClassicBuilder.build(n, n * 13 / 10);
        run_against_oracle(&mut pma, &ops, 211);
    }

    #[test]
    fn head_insert_cost_scales_like_log_squared() {
        // Sustained head inserts are the canonical workload exhibiting the
        // classical PMA's Θ(log² n) amortized growth (on uniform-random
        // inserts rebalances are rare and the cost is nearly flat — E10
        // plots both). Fit cost/op ≈ c·(log n)^p and check the superlinear-
        // in-log shape; also check absolute polylog sanity.
        let mut points = Vec::new();
        for &n in &[1usize << 10, 1 << 12, 1 << 14] {
            let mut pma = ClassicBuilder.build(n, n * 13 / 10);
            let mut total = 0u64;
            for _ in 0..n {
                total += pma.insert(0).cost();
            }
            points.push((n, total as f64 / n as f64));
        }
        let p = fit_log_exponent(&points);
        assert!(
            (1.0..=3.5).contains(&p),
            "classical PMA head-insert scaling exponent {p} off (points: {points:?})"
        );
        // absolute sanity: within a small constant of log²n, far from linear
        assert!(points.iter().all(|&(n, c)| c < 3.0 * (n as f64).log2().powi(2)));
    }

    #[test]
    fn capacity_is_respected() {
        let n = 100;
        let mut pma = ClassicBuilder.build(n, 130);
        for i in 0..n {
            pma.insert(i);
        }
        assert_eq!(pma.len(), n);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pma.insert(0))).is_err());
    }

    #[test]
    fn labels_strictly_increase_with_rank() {
        let n = 300;
        let mut pma = ClassicBuilder.build(n, 400);
        for op in random_insert_ops(n, 5) {
            pma.apply(op);
        }
        let labels: Vec<usize> = (0..n).map(|r| pma.label_of_rank(r)).collect();
        assert!(labels.windows(2).all(|w| w[0] < w[1]));
    }
}
