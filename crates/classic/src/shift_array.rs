//! The naive baseline: a packed array with O(n) shifting.
//!
//! Elements are kept contiguous in a prefix of the slot array; an insertion
//! at rank r shifts the `len - r` elements above it one slot right, a
//! deletion shifts them left. This is exactly what a sorted `Vec` does, and
//! it anchors the experiment plots: every PMA variant must beat its linear
//! per-operation cost by orders of magnitude.

use lll_core::ids::IdGen;
use lll_core::report::OpReport;
use lll_core::slot_array::SlotArray;
use lll_core::traits::{LabelingBuilder, ListLabeling};

/// Naive packed array: O(n) moves per operation.
#[derive(Clone, Debug)]
pub struct ShiftArray {
    slots: SlotArray,
    ids: IdGen,
    capacity: usize,
}

impl ShiftArray {
    /// New empty array with `capacity` elements over `num_slots ≥ capacity`
    /// slots.
    pub fn new(capacity: usize, num_slots: usize) -> Self {
        assert!(num_slots >= capacity);
        Self { slots: SlotArray::new(num_slots), ids: IdGen::new(), capacity }
    }
}

impl ListLabeling for ShiftArray {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn num_slots(&self) -> usize {
        self.slots.num_slots()
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn insert(&mut self, rank: usize) -> OpReport {
        let mut out = OpReport::default();
        self.insert_into(rank, &mut out);
        out
    }

    fn insert_into(&mut self, rank: usize, out: &mut OpReport) {
        out.clear();
        let len = self.len();
        assert!(rank <= len, "insert rank {rank} > len {len}");
        assert!(len < self.capacity, "at capacity");
        for r in (rank..len).rev() {
            self.slots.move_elem(r, r + 1);
        }
        let id = self.ids.fresh();
        self.slots.place(rank, id);
        self.slots.drain_log_into(&mut out.moves);
        out.placed = Some((id, rank as u32));
    }

    fn delete(&mut self, rank: usize) -> OpReport {
        let mut out = OpReport::default();
        self.delete_into(rank, &mut out);
        out
    }

    fn delete_into(&mut self, rank: usize, out: &mut OpReport) {
        out.clear();
        let len = self.len();
        assert!(rank < len, "delete rank {rank} >= len {len}");
        let id = self.slots.remove(rank);
        for r in rank + 1..len {
            self.slots.move_elem(r, r - 1);
        }
        self.slots.drain_log_into(&mut out.moves);
        out.removed = Some((id, rank as u32));
    }

    fn slots(&self) -> &SlotArray {
        &self.slots
    }

    fn name(&self) -> &'static str {
        "naive-shift"
    }
}

/// Builder for [`ShiftArray`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ShiftArrayBuilder;

impl LabelingBuilder for ShiftArrayBuilder {
    type Structure = ShiftArray;

    fn build(&self, capacity: usize, num_slots: usize) -> Self::Structure {
        ShiftArray::new(capacity, num_slots)
    }

    fn min_slack(&self) -> f64 {
        1.0
    }

    fn expected_cost_hint(&self, capacity: usize) -> f64 {
        capacity as f64 / 2.0
    }

    fn worst_case_hint(&self, capacity: usize) -> f64 {
        capacity as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lll_core::ops::Op;
    use lll_core::testkit::run_against_oracle;
    use rand::{Rng, SeedableRng};

    #[test]
    fn oracle_agreement() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let n = 100;
        let mut ops = Vec::new();
        let mut len = 0usize;
        for _ in 0..600 {
            if len == 0 || (len < n && rng.gen_bool(0.6)) {
                ops.push(Op::Insert(rng.gen_range(0..=len)));
                len += 1;
            } else {
                ops.push(Op::Delete(rng.gen_range(0..len)));
                len -= 1;
            }
        }
        let mut s = ShiftArray::new(n, n);
        run_against_oracle(&mut s, &ops, 50);
    }

    #[test]
    fn head_insert_costs_are_linear() {
        let mut s = ShiftArray::new(64, 64);
        let costs: Vec<u64> = (0..64).map(|_| s.insert(0).cost()).collect();
        assert_eq!(costs[0], 1);
        assert_eq!(costs[63], 64);
    }

    #[test]
    fn tail_insert_costs_are_constant() {
        let mut s = ShiftArray::new(64, 64);
        let costs: Vec<u64> = (0..64).map(|i| s.insert(i).cost()).collect();
        assert!(costs.iter().all(|&c| c == 1));
    }
}
