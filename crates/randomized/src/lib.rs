//! # lll-randomized — a history-independent randomized PMA
//!
//! The `Y` of the paper's Corollary 11 is the randomized algorithm of
//! Bender, Conway, Farach-Colton, Komlós, Kuszmaul, Wein (FOCS 2022,
//! reference \[8\]), which breaks the O(log² n) barrier with expected cost
//! O(log^{3/2} n) — at the price of *"almost pessimal tail bounds (the cost
//! is k with probability ~1/k)"* (paper §1) and no worst-case guarantee.
//!
//! **Substitution note (see DESIGN.md §5.4).** We implement a faithful
//! *profile equivalent* rather than the full FOCS'22 machinery: a
//! history-independence-styled PMA (after Bender et al., PODS 2016 \[4\])
//! with two randomized mechanisms:
//!
//! 1. **Randomized per-node density thresholds.** Each calibrator-tree node
//!    draws a uniform jitter subtracted from its upper threshold, redrawn
//!    every time the node is rebalanced. Cascades across levels therefore
//!    desynchronize: an oblivious adversary cannot aim insertions at a
//!    window that is deterministically about to overflow, which lowers
//!    expected cost on oblivious inputs while *widening* the per-operation
//!    cost distribution (the heavy tail experiment E11 measures).
//! 2. **Jittered layouts.** A rebalanced window is spread to a random
//!    order-preserving layout (each element placed uniformly within its
//!    even-spread stride) instead of the deterministic even layout, so the
//!    post-rebalance state depends on fresh randomness rather than on the
//!    insertion history.
//!
//! What Theorems 2/3 consume from `Y` is exactly this profile: good
//! lightly-amortized *expected* cost against an oblivious adversary, bad
//! tails, no worst-case bound. The embedding (the paper's contribution)
//! then restores worst-case bounds by layering `Y` over `Z`.

#![forbid(unsafe_code)]

use lll_core::density::{even_targets_into, SegTree, Thresholds};
use lll_core::pma::{PmaBase, RebalancePolicy};
use lll_core::slot_array::SlotArray;
use lll_core::traits::{log2f, LabelingBuilder};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;

/// Tuning knobs for the randomized policy.
#[derive(Clone, Copy, Debug)]
pub struct RandomizedConfig {
    /// Per-node threshold jitter, as a fraction of the per-level threshold
    /// gap (0 = deterministic thresholds, 1 = jitter can consume the whole
    /// gap). Values around 0.5 give good desynchronization while keeping
    /// every node's effective threshold sound.
    pub jitter_frac: f64,
    /// Whether rebalanced layouts are randomly jittered within strides.
    pub jittered_layout: bool,
}

impl Default for RandomizedConfig {
    fn default() -> Self {
        Self { jitter_frac: 0.5, jittered_layout: true }
    }
}

/// Randomized-threshold, jittered-layout rebalance policy.
#[derive(Clone, Debug)]
pub struct RandomizedPolicy {
    thresholds: Thresholds,
    cfg: RandomizedConfig,
    rng: StdRng,
    /// Lazily drawn per-node upper-threshold jitters, keyed by window;
    /// removed (⇒ redrawn) whenever the node is rebalanced.
    jitters: HashMap<(usize, usize), f64>,
}

impl RandomizedPolicy {
    /// Policy for `capacity` elements on `num_slots` slots with the given
    /// random tape (`rand(Y)` in the paper's notation).
    pub fn new(capacity: usize, num_slots: usize, cfg: RandomizedConfig, rng: StdRng) -> Self {
        Self {
            thresholds: Thresholds::for_capacity(capacity, num_slots),
            cfg,
            rng,
            jitters: HashMap::new(),
        }
    }

    /// The magnitude of one level's threshold gap.
    fn level_gap(&self, height: usize) -> f64 {
        if height == 0 {
            return 0.0;
        }
        (self.thresholds.leaf_upper - self.thresholds.root_upper) / height as f64
    }
}

impl RebalancePolicy for RandomizedPolicy {
    fn upper(&mut self, level: usize, height: usize, window: (usize, usize)) -> f64 {
        let base = self.thresholds.upper(level, height);
        // Leaves keep their deterministic threshold (they must be able to
        // fill completely); the root keeps its (capacity-driven) threshold.
        if level == 0 || level == height {
            return base;
        }
        let gap = self.level_gap(height) * self.cfg.jitter_frac;
        let jitter = *self
            .jitters
            .entry(window)
            .or_insert_with(|| self.rng.gen_range(0.0..=gap.max(f64::MIN_POSITIVE)));
        (base - jitter).max(self.thresholds.root_upper)
    }

    fn lower(&mut self, level: usize, height: usize, _window: (usize, usize)) -> f64 {
        self.thresholds.lower(level, height)
    }

    fn targets_into(
        &mut self,
        _tree: &SegTree,
        slots: &SlotArray,
        a: usize,
        b: usize,
        out: &mut Vec<usize>,
    ) {
        let k = slots.occupied_in(a, b);
        if !self.cfg.jittered_layout || k == 0 {
            return even_targets_into(a, b, k, out);
        }
        // Element i is placed uniformly at random within its stride
        // [⌊i·w/k⌋, ⌊(i+1)·w/k⌋): strictly increasing by construction, and
        // the layout distribution depends only on (a, b, k) — a
        // history-independent state distribution.
        let w = b - a;
        out.extend((0..k).map(|i| {
            let lo = (i * w) / k;
            let hi = ((i + 1) * w) / k;
            a + self.rng.gen_range(lo..hi.max(lo + 1))
        }));
    }

    fn on_rebalance(&mut self, _level: usize, window: (usize, usize)) {
        // Redraw this node's jitter the next time it is consulted.
        self.jitters.remove(&window);
        // A rebalance of a window invalidates the jitters of descendants it
        // engulfed; cheap heuristic: drop jitters of windows nested in it.
        let (a, b) = window;
        self.jitters.retain(|&(x, y), _| !(a <= x && y <= b));
    }

    fn name(&self) -> &'static str {
        "randomized-hipma"
    }
}

/// The randomized history-independent PMA.
pub type RandomizedPma = PmaBase<RandomizedPolicy>;

/// Builder for [`RandomizedPma`]. Carries the seed for the structure's
/// private random tape, so builds are reproducible and independent copies
/// can be given independent tapes (Lemma 4's requirement).
#[derive(Clone, Copy, Debug)]
pub struct RandomizedBuilder {
    /// Seed for the structure's random tape.
    pub seed: u64,
    /// Tuning knobs.
    pub cfg: RandomizedConfig,
}

impl RandomizedBuilder {
    /// Builder with the given seed and default tuning.
    pub fn with_seed(seed: u64) -> Self {
        Self { seed, cfg: RandomizedConfig::default() }
    }
}

impl Default for RandomizedBuilder {
    fn default() -> Self {
        Self::with_seed(0xFACADE)
    }
}

impl LabelingBuilder for RandomizedBuilder {
    type Structure = RandomizedPma;

    fn build(&self, capacity: usize, num_slots: usize) -> Self::Structure {
        let rng = lll_core::rng::rng_from_seed(self.seed);
        PmaBase::new(capacity, num_slots, RandomizedPolicy::new(capacity, num_slots, self.cfg, rng))
    }

    fn expected_cost_hint(&self, capacity: usize) -> f64 {
        // The profile this structure stands in for: O(log^{3/2} n).
        log2f(capacity).powf(1.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lll_core::ops::Op;
    use lll_core::testkit::run_against_oracle;
    use lll_core::traits::ListLabeling;
    use rand::SeedableRng;

    #[test]
    fn oracle_random_workload() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let n = 500;
        let mut ops = Vec::new();
        let mut len = 0usize;
        for _ in 0..3000 {
            if len == 0 || (len < n && rng.gen_bool(0.6)) {
                ops.push(Op::Insert(rng.gen_range(0..=len)));
                len += 1;
            } else {
                ops.push(Op::Delete(rng.gen_range(0..len)));
                len -= 1;
            }
        }
        let mut pma = RandomizedBuilder::with_seed(1).build(n, n * 13 / 10);
        run_against_oracle(&mut pma, &ops, 149);
    }

    #[test]
    fn deterministic_given_seed() {
        let n = 800;
        let ops: Vec<Op> = (0..n).map(|i| Op::Insert(i / 3)).collect();
        let run = |seed| {
            let mut pma = RandomizedBuilder::with_seed(seed).build(n, n * 13 / 10);
            let cost: u64 = ops.iter().map(|&op| pma.apply(op).cost()).sum();
            let layout: Vec<_> = pma.slots().iter_occupied().collect();
            (cost, layout)
        };
        assert_eq!(run(5), run(5), "same seed must reproduce exactly");
        let (c5, _) = run(5);
        let (c6, _) = run(6);
        // different tapes almost surely cost differently
        assert_ne!(c5, c6, "different seeds should diverge (same cost is astronomically unlikely)");
    }

    #[test]
    fn jittered_layouts_differ_across_seeds() {
        let n = 512;
        let build_layout = |seed| {
            let mut pma = RandomizedBuilder::with_seed(seed).build(n, n * 13 / 10);
            for i in 0..n / 2 {
                pma.insert(i);
            }
            pma.slots().layout()
        };
        assert_ne!(build_layout(1), build_layout(2));
    }

    #[test]
    fn fills_to_capacity() {
        let n = 600;
        let mut pma = RandomizedBuilder::with_seed(3).build(n, n * 13 / 10);
        for _ in 0..n {
            pma.insert(0);
        }
        assert_eq!(pma.len(), n);
    }

    #[test]
    fn cost_stays_polylog_on_random_input() {
        use rand::Rng;
        let n = 1 << 12;
        let mut pma = RandomizedBuilder::with_seed(4).build(n, n * 13 / 10);
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let mut total = 0u64;
        for len in 0..n {
            total += pma.insert(rng.gen_range(0..=len)).cost();
        }
        let amortized = total as f64 / n as f64;
        assert!(amortized < 80.0, "randomized amortized {amortized} too high");
    }

    #[test]
    fn has_heavier_tail_than_its_mean() {
        // The motivating profile: occasional operations far above the mean.
        let n = 1 << 12;
        let mut pma = RandomizedBuilder::with_seed(9).build(n, n * 13 / 10);
        let mut max = 0u64;
        let mut total = 0u64;
        for _ in 0..n {
            let c = pma.insert(0).cost();
            max = max.max(c);
            total += c;
        }
        let mean = total as f64 / n as f64;
        assert!(max as f64 > 8.0 * mean, "expected spiky costs: max {max} vs mean {mean:.1}");
    }
}
