//! `lll-obs`: dependency-free observability primitives for the
//! layered-list-labeling stack.
//!
//! The paper's central claims are *distributional* — O(log^{3/2} n)
//! amortized moves arriving in layered bursts — so validating the
//! reproduction under real traffic needs latency and move-count
//! **histograms**, not averages. Everything here is built for that hot
//! path:
//!
//! * [`Counter`] / [`Gauge`] — single `AtomicU64`s, relaxed ordering.
//! * [`Histogram`] — log2-bucketed over a `[lo, hi]` power-of-two range
//!   with one under-range and one overflow bucket; recording is a handful
//!   of relaxed atomic RMWs into a pre-allocated array (zero-alloc, no
//!   locks), readout gives p50/p95/p99/max.
//! * [`Registry`] — name-validated (snake_case, unique) metric
//!   registration plus a Prometheus-style text exposition
//!   (`# HELP`/`# TYPE` lines) for scraping.
//! * [`TraceRing`] — a bounded lock-free ring of recent structural events
//!   (rebalances, splits/merges, snapshots, drains): writers never block
//!   or allocate, readers drain a best-effort snapshot.
//!
//! Recording paths never allocate and never take a lock; they are safe to
//! call from any thread, including inside the zero-allocation steady-state
//! churn the workspace's counting-allocator harness pins.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Count one event.
    // lll-check: no-alloc
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` events.
    // lll-check: no-alloc
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Clone for Counter {
    /// A detached snapshot: the clone starts at the source's current value
    /// and counts independently from there.
    fn clone(&self) -> Self {
        Self(AtomicU64::new(self.get()))
    }
}

/// A value that goes up and down (lengths, occupancies, queue depths).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Overwrite the value.
    // lll-check: no-alloc
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Clone for Gauge {
    fn clone(&self) -> Self {
        Self(AtomicU64::new(self.get()))
    }
}

/// A log2-bucketed histogram over a `[lo, hi]` power-of-two range.
///
/// Bucket 0 counts values `<= lo`; bucket `i` (for `1 <= i <= k`, where
/// `hi = lo * 2^k`) counts values in `(lo * 2^(i-1), lo * 2^i]`; the last
/// bucket counts overflow values `> hi`. Power-of-two edges land *exactly*
/// on their bucket's inclusive upper bound, so quantile readout on
/// synthetic edge-value fills is exact.
///
/// Recording is four relaxed atomic RMWs into pre-allocated storage —
/// no locks, no allocation — and is safe from any number of threads
/// concurrently (no samples are lost; see the crate tests).
#[derive(Debug)]
pub struct Histogram {
    lo_exp: u32,
    /// `k + 2` buckets: under-range, `k` doubling bands, overflow.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// A histogram spanning `[lo, hi]`. Both bounds must be powers of two
    /// with `0 < lo < hi`.
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(lo.is_power_of_two() && hi.is_power_of_two(), "histogram bounds: powers of two");
        assert!(lo < hi, "histogram bounds: lo {lo} must be below hi {hi}");
        let k = (hi.trailing_zeros() - lo.trailing_zeros()) as usize;
        let buckets = (0..k + 2).map(|_| AtomicU64::new(0)).collect();
        Self {
            lo_exp: lo.trailing_zeros(),
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The conventional latency range: ~1 µs to ~1 s in nanoseconds
    /// (`2^10` to `2^30` ns).
    pub fn latency_ns() -> Self {
        Self::new(1 << 10, 1 << 30)
    }

    /// The conventional structural range for element-move counts and
    /// rebalance window widths: 1 to `2^20`.
    pub fn moves() -> Self {
        Self::new(1, 1 << 20)
    }

    /// Record one sample.
    // lll-check: no-alloc
    #[inline]
    pub fn record(&self, value: u64) {
        let idx = self.bucket_index(value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    #[inline]
    fn bucket_index(&self, value: u64) -> usize {
        if value <= (1u64 << self.lo_exp) {
            return 0;
        }
        // For lo * 2^(i-1) < v <= lo * 2^i, (v - 1) >> lo_exp has exactly
        // i significant bits.
        let i = (64 - ((value - 1) >> self.lo_exp).leading_zeros()) as usize;
        i.min(self.buckets.len() - 1)
    }

    /// The inclusive upper bound of bucket `i` (the overflow bucket has
    /// none and reports `u64::MAX`).
    pub fn bucket_bound(&self, i: usize) -> u64 {
        if i + 1 == self.buckets.len() {
            u64::MAX
        } else {
            1u64 << (self.lo_exp + i as u32)
        }
    }

    /// Per-bucket sample counts, under-range first, overflow last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest value recorded (exact, via `fetch_max`).
    #[inline]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The value at quantile `q` in `[0, 1]`: the inclusive upper bound of
    /// the bucket holding the `ceil(q * count)`-th smallest sample, capped
    /// at the exact observed [`max`](Self::max). Returns 0 with no samples.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= target {
                return self.bucket_bound(i).min(self.max());
            }
        }
        self.max()
    }

    /// Median upper bound — `quantile(0.50)`.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile upper bound — `quantile(0.95)`.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile upper bound — `quantile(0.99)`.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

impl Clone for Histogram {
    /// A detached snapshot: the clone carries the source's current samples
    /// and records independently from there.
    fn clone(&self) -> Self {
        Self {
            lo_exp: self.lo_exp,
            buckets: self
                .buckets
                .iter()
                .map(|b| AtomicU64::new(b.load(Ordering::Relaxed)))
                .collect(),
            count: AtomicU64::new(self.count()),
            sum: AtomicU64::new(self.sum()),
            max: AtomicU64::new(self.max()),
        }
    }
}

/// What a registered metric is, for the `# TYPE` exposition line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

enum MetricRef {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    name: String,
    /// Optional `(key, value)` label distinguishing series of one name.
    label: Option<(String, String)>,
    help: String,
    metric: MetricRef,
}

impl Entry {
    fn kind(&self) -> MetricKind {
        match self.metric {
            MetricRef::Counter(_) => MetricKind::Counter,
            MetricRef::Gauge(_) => MetricKind::Gauge,
            MetricRef::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// True for `[a-z][a-z0-9_]*` — the metric-name grammar the workspace
/// linter (`lll-check`, rule `obs-registered`) also enforces at call
/// sites.
pub fn is_snake_case(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some('a'..='z'))
        && chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// A set of named metrics with validated names and a Prometheus-style
/// text exposition.
///
/// Registration happens at startup (it allocates and validates); the
/// returned `Arc`s are then recorded into lock-free from any thread.
/// Registering a non-snake_case name or a duplicate `(name, label)` pair
/// panics — metric names are part of the operational interface and a
/// collision is a programming error, caught by tests and by `lll-check`.
#[derive(Default)]
pub struct Registry {
    entries: Vec<Entry>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&mut self, name: &str, label: Option<(&str, &str)>, help: &str, m: MetricRef) {
        assert!(is_snake_case(name), "metric name {name:?} is not snake_case");
        if let Some((k, _)) = label {
            assert!(is_snake_case(k), "label key {k:?} is not snake_case");
        }
        let dup = self.entries.iter().any(|e| {
            e.name == name && e.label.as_ref().map(|(k, v)| (k.as_str(), v.as_str())) == label
        });
        assert!(!dup, "duplicate metric registration: {name:?} {label:?}");
        self.entries.push(Entry {
            name: name.to_string(),
            label: label.map(|(k, v)| (k.to_string(), v.to_string())),
            help: help.to_string(),
            metric: m,
        });
    }

    /// Register a counter.
    pub fn register_counter(&mut self, name: &str, help: &str) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.register(name, None, help, MetricRef::Counter(Arc::clone(&c)));
        c
    }

    /// Register (adopt) a counter that already exists elsewhere — e.g. a
    /// data structure's internal instrument — so the exposition and the
    /// structure read the same atomic. Same validation as
    /// [`register_counter`](Self::register_counter).
    pub fn register_counter_shared(
        &mut self,
        name: &str,
        help: &str,
        c: Arc<Counter>,
    ) -> Arc<Counter> {
        self.register(name, None, help, MetricRef::Counter(Arc::clone(&c)));
        c
    }

    /// Register a gauge.
    pub fn register_gauge(&mut self, name: &str, help: &str) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.register(name, None, help, MetricRef::Gauge(Arc::clone(&g)));
        g
    }

    /// Register a histogram spanning `[lo, hi]` (powers of two).
    pub fn register_histogram(
        &mut self,
        name: &str,
        help: &str,
        lo: u64,
        hi: u64,
    ) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new(lo, hi));
        self.register(name, None, help, MetricRef::Histogram(Arc::clone(&h)));
        h
    }

    /// Register (adopt) an externally owned histogram, the
    /// [`register_counter_shared`](Self::register_counter_shared)
    /// counterpart.
    pub fn register_histogram_shared(
        &mut self,
        name: &str,
        help: &str,
        h: Arc<Histogram>,
    ) -> Arc<Histogram> {
        self.register(name, None, help, MetricRef::Histogram(Arc::clone(&h)));
        h
    }

    /// Register one labeled series of a histogram family — e.g. one
    /// request-latency histogram per verb under a shared name.
    pub fn register_histogram_labeled(
        &mut self,
        name: &str,
        label: (&str, &str),
        help: &str,
        lo: u64,
        hi: u64,
    ) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new(lo, hi));
        self.register(name, Some(label), help, MetricRef::Histogram(Arc::clone(&h)));
        h
    }

    /// Render every registered metric in the Prometheus text format:
    /// `# HELP` / `# TYPE` once per metric name, then one sample line per
    /// series (histograms expose cumulative `_bucket{le=...}` lines plus
    /// `_sum` and `_count`).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for e in &self.entries {
            if last_name != Some(e.name.as_str()) {
                let kind = match e.kind() {
                    MetricKind::Counter => "counter",
                    MetricKind::Gauge => "gauge",
                    MetricKind::Histogram => "histogram",
                };
                push_meta(&mut out, &e.name, kind, &e.help);
                last_name = Some(e.name.as_str());
            }
            let label = e.label.as_ref().map(|(k, v)| (k.as_str(), v.as_str()));
            match &e.metric {
                MetricRef::Counter(c) => {
                    push_sample(&mut out, &e.name, &label.into_iter().collect::<Vec<_>>(), c.get())
                }
                MetricRef::Gauge(g) => {
                    push_sample(&mut out, &e.name, &label.into_iter().collect::<Vec<_>>(), g.get())
                }
                MetricRef::Histogram(h) => push_histogram(&mut out, &e.name, label, h),
            }
        }
        out
    }
}

/// Append `# HELP` and `# TYPE` lines for a metric name.
pub fn push_meta(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(help);
    out.push_str("\n# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Append one `name{labels} value` sample line.
pub fn push_sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: u64) {
    out.push_str(name);
    push_labels(out, labels);
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

fn push_labels(out: &mut String, labels: &[(&str, &str)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
}

/// Append the full Prometheus exposition of one histogram series:
/// cumulative `_bucket{le=...}` lines, `_sum`, and `_count`.
pub fn push_histogram(out: &mut String, name: &str, label: Option<(&str, &str)>, h: &Histogram) {
    let bucket_name = format!("{name}_bucket");
    let mut cum = 0u64;
    let counts = h.bucket_counts();
    let last = counts.len() - 1;
    for (i, c) in counts.into_iter().enumerate() {
        cum += c;
        let le = if i == last { "+Inf".to_string() } else { h.bucket_bound(i).to_string() };
        let mut labels: Vec<(&str, &str)> = label.into_iter().collect();
        labels.push(("le", le.as_str()));
        push_sample(out, &bucket_name, &labels, cum);
    }
    let base: Vec<(&str, &str)> = label.into_iter().collect();
    push_sample(out, &format!("{name}_sum"), &base, h.sum());
    push_sample(out, &format!("{name}_count"), &base, h.count());
}

/// The structural event vocabulary a [`TraceRing`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceKind {
    /// A PMA window rebalance: `a` = window width (slots), `b` = element
    /// moves performed, `c` = the structure's epoch-bump count.
    Rebalance = 1,
    /// A capacity-growing rebuild: `a` = new capacity, `b` = rebuild
    /// moves, `c` = epoch-bump count.
    Grow = 2,
    /// A capacity-shrinking rebuild: same payload as [`Grow`](Self::Grow).
    Shrink = 3,
    /// A shard split: `a` = shard index, `b` = resulting shard count,
    /// `c` = entries in the split shard.
    Split = 4,
    /// A shard merge: `a` = left shard index, `b` = resulting shard
    /// count, `c` = entries merged in.
    Merge = 5,
    /// A snapshot write: `a` = total entries, `b` = shard count.
    Snapshot = 6,
    /// A server drain began.
    Drain = 7,
    /// A WAL checkpoint: `a` = the checkpoint LSN, `b` = entries in the
    /// snapshot, `c` = log segments truncated away.
    Checkpoint = 8,
}

impl TraceKind {
    /// Decode a kind recorded as a `u64`.
    pub fn from_u64(v: u64) -> Option<Self> {
        Some(match v {
            1 => Self::Rebalance,
            2 => Self::Grow,
            3 => Self::Shrink,
            4 => Self::Split,
            5 => Self::Merge,
            6 => Self::Snapshot,
            7 => Self::Drain,
            8 => Self::Checkpoint,
            _ => return None,
        })
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Rebalance => "rebalance",
            Self::Grow => "grow",
            Self::Shrink => "shrink",
            Self::Split => "split",
            Self::Merge => "merge",
            Self::Snapshot => "snapshot",
            Self::Drain => "drain",
            Self::Checkpoint => "checkpoint",
        }
    }
}

/// One structural event captured by a [`TraceRing`]: a global sequence
/// number, the event kind, and three kind-specific payload words (see
/// [`TraceKind`] for each kind's payload layout).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global record order (0-based; monotone across the ring's lifetime).
    pub seq: u64,
    /// What happened.
    pub kind: TraceKind,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
    /// Third payload word.
    pub c: u64,
}

#[derive(Debug, Default)]
struct TraceSlot {
    /// `0` = never written; otherwise the slot holds event `seq - 1`.
    /// Stored **after** the payload (release) so a reader seeing a stable
    /// nonzero value observes a complete event.
    seq: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    c: AtomicU64,
}

/// A bounded lock-free ring of recent structural events.
///
/// Writers claim a global sequence number with one `fetch_add` and
/// overwrite the slot `seq % capacity` — recording never blocks, never
/// allocates, and costs a handful of relaxed stores, so it is safe on the
/// zero-alloc rebalance hot path. Readers take a best-effort
/// [`snapshot`](Self::snapshot): an event being overwritten concurrently
/// is detected (its slot's sequence word changes across the payload read)
/// and skipped, never torn.
#[derive(Debug)]
pub struct TraceRing {
    cursor: AtomicU64,
    slots: Box<[TraceSlot]>,
}

impl TraceRing {
    /// A ring holding the most recent `capacity` events (rounded up to a
    /// power of two, minimum 8).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(8);
        Self { cursor: AtomicU64::new(0), slots: (0..cap).map(|_| TraceSlot::default()).collect() }
    }

    /// Slots in the ring (events retained).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events recorded over the ring's lifetime (only the most recent
    /// [`capacity`](Self::capacity) are still readable).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Record one event.
    // lll-check: no-alloc
    pub fn record(&self, kind: TraceKind, a: u64, b: u64, c: u64) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq as usize) & (self.slots.len() - 1)];
        // Invalidate first so a concurrent reader never pairs the new
        // payload with the old sequence number (or vice versa).
        slot.seq.store(0, Ordering::Release);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.c.store(c, Ordering::Relaxed);
        slot.seq.store(seq + 1, Ordering::Release);
    }

    /// A best-effort snapshot of the retained events in record order.
    /// Events mid-overwrite are skipped; completed events are never torn.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let published = slot.seq.load(Ordering::Acquire);
            if published == 0 {
                continue;
            }
            let kind = slot.kind.load(Ordering::Relaxed);
            let (a, b, c) = (
                slot.a.load(Ordering::Relaxed),
                slot.b.load(Ordering::Relaxed),
                slot.c.load(Ordering::Relaxed),
            );
            if slot.seq.load(Ordering::Acquire) != published {
                continue; // overwritten while reading
            }
            let Some(kind) = TraceKind::from_u64(kind) else { continue };
            out.push(TraceEvent { seq: published - 1, kind, a, b, c });
        }
        out.sort_by_key(|e| e.seq);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        let detached = c.clone();
        c.inc();
        assert_eq!((c.get(), detached.get()), (11, 10));
        let g = Gauge::new();
        g.set(7);
        assert_eq!(g.get(), 7);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_power_of_two_edges_land_in_the_right_bucket() {
        // [lo=4, hi=64]: buckets are <=4, (4,8], (8,16], (16,32], (32,64], >64.
        let h = Histogram::new(4, 64);
        assert_eq!(h.bucket_counts().len(), 6);
        for (value, bucket) in [
            (0, 0),
            (1, 0),
            (4, 0), // lo lands in the under-range bucket (inclusive bound)
            (5, 1),
            (8, 1), // each power-of-two edge is its band's inclusive top
            (9, 2),
            (16, 2),
            (17, 3),
            (32, 3),
            (33, 4),
            (64, 4), // hi is the top band's inclusive bound
            (65, 5), // overflow
            (u64::MAX, 5),
        ] {
            let before = h.bucket_counts();
            h.record(value);
            let after = h.bucket_counts();
            let hit: Vec<usize> = (0..after.len()).filter(|&i| after[i] != before[i]).collect();
            assert_eq!(hit, vec![bucket], "value {value} must land in bucket {bucket}");
        }
        assert_eq!(h.count(), 13);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn histogram_bounds_and_quantiles_are_exact_on_edge_fills() {
        let h = Histogram::new(1, 1 << 20);
        // Fill with exact bucket bounds: quantiles must read back exactly.
        for v in [1u64, 2, 4, 8, 16, 32, 64, 128, 256, 512] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 1023);
        assert_eq!(h.max(), 512);
        assert_eq!(h.quantile(0.10), 1);
        assert_eq!(h.p50(), 16, "5th of 10 edge values");
        assert_eq!(h.quantile(0.90), 256);
        assert_eq!(h.p99(), 512);
        assert_eq!(h.quantile(1.0), 512);
        // Quantiles never exceed the observed max, even mid-bucket.
        let m = Histogram::new(1, 1 << 10);
        m.record(100);
        assert_eq!(m.p50(), 100, "single mid-bucket sample reads back as max");
    }

    #[test]
    fn histogram_empty_and_degenerate_quantiles() {
        let h = Histogram::latency_ns();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.count(), 0);
        h.record(0);
        assert_eq!(h.p50(), 0, "value 0 in the under-range bucket, max 0");
    }

    #[test]
    fn histogram_concurrent_records_lose_no_samples() {
        let h = std::sync::Arc::new(Histogram::moves());
        let per_thread = 50_000u64;
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        h.record((i % 1024) + t);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("recorder thread");
        }
        assert_eq!(h.count(), 4 * per_thread, "no samples lost");
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 4 * per_thread);
        assert!(h.max() >= 1023);
    }

    #[test]
    fn registry_renders_prometheus_text() {
        let mut reg = Registry::new();
        let c = reg.register_counter("lll_test_events_total", "events observed");
        let g = reg.register_gauge("lll_test_depth", "current depth");
        let h = reg.register_histogram_labeled(
            "lll_test_latency_ns",
            ("verb", "get"),
            "latency in nanoseconds",
            1 << 10,
            1 << 30,
        );
        c.add(3);
        g.set(5);
        h.record(2048);
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP lll_test_events_total events observed"), "{text}");
        assert!(text.contains("# TYPE lll_test_events_total counter"), "{text}");
        assert!(text.contains("lll_test_events_total 3"), "{text}");
        assert!(text.contains("# TYPE lll_test_depth gauge"), "{text}");
        assert!(text.contains("lll_test_depth 5"), "{text}");
        assert!(text.contains("# TYPE lll_test_latency_ns histogram"), "{text}");
        assert!(text.contains("lll_test_latency_ns_bucket{verb=\"get\",le=\"2048\"} 1"), "{text}");
        assert!(text.contains("lll_test_latency_ns_bucket{verb=\"get\",le=\"+Inf\"} 1"), "{text}");
        assert!(text.contains("lll_test_latency_ns_sum{verb=\"get\"} 2048"), "{text}");
        assert!(text.contains("lll_test_latency_ns_count{verb=\"get\"} 1"), "{text}");
    }

    #[test]
    fn registry_emits_family_meta_once_across_labeled_series() {
        let mut reg = Registry::new();
        for verb in ["get", "insert"] {
            reg.register_histogram_labeled("lll_lat_ns", ("verb", verb), "latency", 1, 1 << 10);
        }
        let text = reg.render_prometheus();
        assert_eq!(text.matches("# TYPE lll_lat_ns histogram").count(), 1, "{text}");
        assert!(text.contains("verb=\"get\""), "{text}");
        assert!(text.contains("verb=\"insert\""), "{text}");
    }

    #[test]
    fn registry_adopts_shared_instruments() {
        // A structure owns its counters; the registry adopts the same Arcs
        // so the exposition and the structure can never disagree.
        let owned_c = Arc::new(Counter::new());
        let owned_h = Arc::new(Histogram::new(1, 64));
        owned_c.add(7);
        owned_h.record(3);
        let mut reg = Registry::new();
        let c = reg.register_counter_shared("lll_shared_hits_total", "hits", Arc::clone(&owned_c));
        reg.register_histogram_shared("lll_shared_retries", "retries", Arc::clone(&owned_h));
        assert!(Arc::ptr_eq(&c, &owned_c), "adoption must not clone the metric");
        owned_c.inc();
        let text = reg.render_prometheus();
        assert!(text.contains("lll_shared_hits_total 8"), "{text}");
        assert!(text.contains("lll_shared_retries_count 1"), "{text}");
        assert!(text.contains("# TYPE lll_shared_retries histogram"), "{text}");
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn registry_rejects_duplicate_shared_adoption() {
        let mut reg = Registry::new();
        reg.register_counter("lll_adopted_total", "first");
        reg.register_counter_shared("lll_adopted_total", "second", Arc::new(Counter::new()));
    }

    #[test]
    #[should_panic(expected = "snake_case")]
    fn registry_rejects_non_snake_case_names() {
        Registry::new().register_counter("llLTestEvents", "bad name");
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn registry_rejects_duplicate_names() {
        let mut reg = Registry::new();
        reg.register_counter("lll_twice", "first");
        reg.register_counter("lll_twice", "second");
    }

    #[test]
    fn snake_case_grammar() {
        assert!(is_snake_case("lll_server_request_latency_ns"));
        assert!(is_snake_case("a1_b2"));
        assert!(!is_snake_case(""));
        assert!(!is_snake_case("CamelCase"));
        assert!(!is_snake_case("_leading"));
        assert!(!is_snake_case("9leading"));
        assert!(!is_snake_case("has-dash"));
    }

    #[test]
    fn trace_ring_records_and_snapshots_in_order() {
        let ring = TraceRing::new(8);
        assert_eq!(ring.capacity(), 8);
        ring.record(TraceKind::Rebalance, 64, 12, 0);
        ring.record(TraceKind::Grow, 128, 100, 1);
        ring.record(TraceKind::Split, 0, 2, 500);
        let events = ring.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events[0],
            TraceEvent { seq: 0, kind: TraceKind::Rebalance, a: 64, b: 12, c: 0 }
        );
        assert_eq!(events[1].kind, TraceKind::Grow);
        assert_eq!(events[2].kind.name(), "split");
        assert_eq!(ring.recorded(), 3);
    }

    #[test]
    fn trace_ring_keeps_only_the_most_recent_events() {
        let ring = TraceRing::new(8);
        for i in 0..20u64 {
            ring.record(TraceKind::Rebalance, i, 0, 0);
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 8, "ring retains exactly its capacity");
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<_>>(), "oldest events overwritten");
        assert_eq!(events[0].a, 12);
    }

    #[test]
    fn trace_ring_concurrent_writers_never_tear() {
        let ring = std::sync::Arc::new(TraceRing::new(16));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let ring = std::sync::Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        // Payload invariant: b == a + 1, c == a + 2.
                        let a = t * 1_000_000 + i;
                        ring.record(TraceKind::Merge, a, a + 1, a + 2);
                    }
                })
            })
            .collect();
        for _ in 0..100 {
            for e in ring.snapshot() {
                assert_eq!((e.b, e.c), (e.a + 1, e.a + 2), "torn event surfaced");
            }
        }
        for w in writers {
            w.join().expect("writer thread");
        }
        assert_eq!(ring.recorded(), 40_000);
        assert_eq!(ring.snapshot().len(), 16);
    }
}
